(* Correctness tests for the paper's Figure 1 algorithm: unit scenarios,
   property tests over random schedules, and exhaustive model checking over
   every crash schedule for small systems. *)

open Model
open Sync_sim
open Helpers

let sched l =
  Schedule.of_list
    (List.map (fun (p, r, pt) -> (Pid.of_int p, Crash.make ~round:r pt)) l)

let decision res pid =
  match Run_result.status res (Pid.of_int pid) with
  | Run_result.Decided { value; at_round } -> (value, at_round)
  | Run_result.Crashed _ -> Alcotest.fail "unexpectedly crashed"
  | Run_result.Undecided -> Alcotest.fail "unexpectedly undecided"

let test_one_round_no_crash () =
  (* If p1 does not crash, everyone decides p1's proposal in round 1. *)
  let res =
    run_rwwc ~n:5 ~t:3 ~schedule:Schedule.empty ~proposals:[| 7; 1; 2; 3; 4 |] ()
  in
  List.iter
    (fun p -> Alcotest.(check (pair int int)) "decides 7 at round 1" (7, 1) (decision res p))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "one round" 1 res.Run_result.rounds_executed

let test_second_coordinator_takes_over () =
  (* p1 dies silently: p2 imposes its own proposal in round 2. *)
  let res =
    run_rwwc ~n:4 ~t:2
      ~schedule:(sched [ (1, 1, Crash.Before_send) ])
      ~proposals:[| 10; 20; 30; 40 |] ()
  in
  List.iter
    (fun p -> Alcotest.(check (pair int int)) "decides 20 at round 2" (20, 2) (decision res p))
    [ 2; 3; 4 ]

let test_adopted_estimate_survives_coordinator () =
  (* p1 delivers its estimate to p2 only, then dies without commit.  p2 has
     adopted 10, so round 2 imposes 10 — the dead coordinator's value wins
     through adoption. *)
  let res =
    run_rwwc ~n:4 ~t:2
      ~schedule:(sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 2 ])) ])
      ~proposals:[| 10; 20; 30; 40 |] ()
  in
  List.iter
    (fun p -> Alcotest.(check (pair int int)) "decides 10 at round 2" (10, 2) (decision res p))
    [ 2; 3; 4 ]

let test_commit_prefix_decides_early () =
  (* p1 completes its data step and its commit reaches only p4 (the first
     element of the order p_n .. p_2).  p4 decides in round 1; the others
     must still decide the same value in round 2 via p2 (which adopted 10). *)
  let res =
    run_rwwc ~n:4 ~t:2
      ~schedule:(sched [ (1, 1, Crash.After_data 1) ])
      ~proposals:[| 10; 20; 30; 40 |] ()
  in
  Alcotest.(check (pair int int)) "p4 decides in round 1" (10, 1) (decision res 4);
  Alcotest.(check (pair int int)) "p3 decides in round 2" (10, 2) (decision res 3);
  Alcotest.(check (pair int int)) "p2 decides in round 2" (10, 2) (decision res 2)

let test_silent_killer_forces_f_plus_1 () =
  (* The tightness schedule of Theorem 4: f silent coordinators force every
     decision to round exactly f + 1. *)
  let n = 6 in
  for f = 0 to n - 2 do
    let res =
      run_rwwc ~n ~t:(n - 2)
        ~schedule:(Adversary.Strategies.coordinator_killer ~n ~f ~style:Adversary.Strategies.Silent)
        ~proposals:(Engine.distinct_proposals n) ()
    in
    check_consensus ~context:(Printf.sprintf "silent killer f=%d" f) ~bound:(f + 1) res;
    List.iter
      (fun p ->
        let v, r = decision res p in
        Alcotest.(check int) (Printf.sprintf "f=%d p%d decides at f+1" f p) (f + 1) r;
        Alcotest.(check int) (Printf.sprintf "f=%d p%d decides v_{f+1}" f p) (f + 1) v)
      (List.init (n - f) (fun k -> f + 1 + k))
  done

let test_greedy_killer_locks_first_value () =
  (* Theorem 2's worst-case schedule: every dying coordinator completes its
     data step, so the very first coordinator's value is adopted and every
     subsequent coordinator re-imposes it. *)
  let n = 6 and f = 3 in
  let res =
    run_rwwc ~n ~t:4
      ~schedule:(Adversary.Strategies.coordinator_killer ~n ~f ~style:Adversary.Strategies.Greedy)
      ~proposals:[| 100; 2; 3; 4; 5; 6 |] ()
  in
  check_consensus ~context:"greedy killer" ~bound:(f + 1) res;
  Alcotest.(check (list int)) "decided value is p1's" [ 100 ]
    (Run_result.decided_values res);
  (* Commits reached p_{f+2}..p_n in round 1 already; p_{f+1} is kept
     undecided and wraps up in its own round. *)
  List.iter
    (fun p ->
      let _, r = decision res p in
      Alcotest.(check int) (Printf.sprintf "p%d decided round 1" p) 1 r)
    [ 5; 6 ];
  let _, r4 = decision res 4 in
  Alcotest.(check int) "p4 decides in its own round" (f + 1) r4

let test_teasing_killer_churns_estimates () =
  (* The teasing adversary delivers each dying coordinator's estimate to the
     k highest-id processes and never a commit: estimates keep being
     overwritten, yet uniform consensus must hold and the survivor chain
     settles on the last teaser's value. *)
  let n = 6 and f = 3 and k = 2 in
  let res =
    run_rwwc ~n ~t:4
      ~schedule:
        (Adversary.Strategies.coordinator_killer ~n ~f
           ~style:(Adversary.Strategies.Teasing k))
      ~proposals:[| 10; 20; 30; 40; 50; 60 |] ()
  in
  check_consensus ~context:"teasing killer" ~bound:(f + 1) res;
  (* p5 and p6 (the two highest) received every teaser's estimate; the last
     teaser was p3, so the round-4 coordinator p4 imposes... p4 itself never
     received any teaser value (k = 2 reaches only p5, p6), so it imposes
     its own proposal. *)
  Alcotest.(check (list int)) "p4's own value wins" [ 40 ]
    (Run_result.decided_values res);
  List.iter
    (fun p ->
      let _, r = decision res p in
      Alcotest.(check int) (Printf.sprintf "p%d decides at f+1" p) (f + 1) r)
    [ 4; 5; 6 ]

let test_coordinator_decides_even_if_alone () =
  (* n=2: p2 crashes before sending in round 1... p1 is coordinator and
     decides its own value immediately regardless. *)
  let res =
    run_rwwc ~n:2 ~t:1
      ~schedule:(sched [ (2, 1, Crash.Before_send) ])
      ~proposals:[| 5; 9 |] ()
  in
  Alcotest.(check (pair int int)) "p1 decides own value" (5, 1) (decision res 1)

let test_last_coordinator_correct () =
  (* All of p1..p_t crash silently; p_{t+1} must still wrap up at t+1. *)
  let n = 5 and t = 3 in
  let res =
    run_rwwc ~n ~t
      ~schedule:(Adversary.Strategies.coordinator_killer ~n ~f:t ~style:Adversary.Strategies.Silent)
      ~proposals:[| 1; 2; 3; 4; 5 |] ()
  in
  Alcotest.(check (pair int int)) "p4 decides own value at t+1" (4, 4) (decision res 4);
  Alcotest.(check (pair int int)) "p5 follows" (4, 4) (decision res 5)

let test_message_pattern_matches_figure1 () =
  (* Only the coordinator sends; data goes to higher ids; commits from p_n
     downwards.  Verified on the trace of a failure-free run. *)
  let res =
    run_rwwc ~record_trace:true ~n:4 ~t:2 ~schedule:Schedule.empty
      ~proposals:[| 1; 2; 3; 4 |] ()
  in
  let data_sends =
    List.filter_map
      (function
        | Trace.Data_sent { from; dest; _ } -> Some (Pid.to_int from, Pid.to_int dest)
        | _ -> None)
      res.Run_result.trace
  and sync_sends =
    List.filter_map
      (function
        | Trace.Sync_sent { from; dest; _ } -> Some (Pid.to_int from, Pid.to_int dest)
        | _ -> None)
      res.Run_result.trace
  in
  Alcotest.(check (list (pair int int))) "data: p1 to p2,p3,p4 in order"
    [ (1, 2); (1, 3); (1, 4) ] data_sends;
  Alcotest.(check (list (pair int int))) "commits: p1 to p4,p3,p2 in order"
    [ (1, 4); (1, 3); (1, 2) ] sync_sends

let test_bit_accounting_best_case () =
  (* Theorem 2 best case: (n-1) data messages of |v| bits and (n-1) one-bit
     commits. *)
  let n = 7 and value_bits = 16 in
  let res =
    run_rwwc ~value_bits ~n ~t:5 ~schedule:Schedule.empty
      ~proposals:(Engine.distinct_proposals n) ()
  in
  Alcotest.(check int) "total bits" ((n - 1) * (value_bits + 1))
    (Run_result.total_bits res)

(* --- Property tests ------------------------------------------------------ *)

let prop_uniform_consensus =
  qtest ~count:800 "random schedules: uniform consensus in <= f+1 rounds"
    QCheck2.Gen.(
      map (fun s -> s) (scenario_gen ~model:Model_kind.Extended ()))
    (fun s ->
      let res =
        run_rwwc ~n:s.n ~t:s.t ~schedule:s.schedule ~proposals:s.proposals ()
      in
      let bound = f_actual res + 1 in
      match
        Spec.Properties.failures
          (Spec.Properties.uniform_consensus ~bound res)
      with
      | [] -> true
      | c :: _ ->
        QCheck2.Test.fail_reportf "%s on %s"
          (Format.asprintf "%a" Spec.Properties.pp_check c)
          (scenario_print s))

let prop_decision_value_is_adopted_chain =
  qtest ~count:400 "decided value is the estimate of a coordinator"
    (scenario_gen ~model:Model_kind.Extended ())
    (fun s ->
      let res =
        run_rwwc ~n:s.n ~t:s.t ~schedule:s.schedule ~proposals:s.proposals ()
      in
      (* Validity refined: the decided value must be the proposal of some
         process with id <= the first deciding round's coordinator. *)
      match Run_result.decisions res with
      | [] -> true
      | decisions ->
        let first_round =
          List.fold_left (fun acc (_, _, r) -> min acc r) max_int decisions
        in
        List.for_all
          (fun (_, v, _) ->
            (* value proposed by one of p_1 .. p_{first_round} *)
            Array.exists (Int.equal v)
              (Array.sub s.proposals 0 first_round))
          decisions)

(* --- Exhaustive model check ---------------------------------------------- *)

let exhaustive ~n ~max_f ~max_round () =
  let proposals = Engine.distinct_proposals n in
  let count = ref 0 in
  Seq.iter
    (fun schedule ->
      incr count;
      let res = run_rwwc ~n ~t:(n - 2) ~schedule ~proposals () in
      let bound = f_actual res + 1 in
      Spec.Properties.assert_ok
        ~context:(Printf.sprintf "n=%d schedule=%s" n (Schedule.to_string schedule))
        (Spec.Properties.uniform_consensus ~bound res))
    (Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n ~max_f ~max_round);
  Alcotest.(check bool)
    (Printf.sprintf "checked %d schedules" !count)
    true (!count > 10)

let test_exhaustive_n3 () = exhaustive ~n:3 ~max_f:1 ~max_round:2 ()
let test_exhaustive_n4 () = exhaustive ~n:4 ~max_f:2 ~max_round:3 ()
let test_exhaustive_n5_single_fault () = exhaustive ~n:5 ~max_f:1 ~max_round:2 ()
let test_exhaustive_n5_two_faults () = exhaustive ~n:5 ~max_f:2 ~max_round:3 ()

let () =
  Alcotest.run "rwwc"
    [
      ( "scenarios",
        [
          Alcotest.test_case "one-round" `Quick test_one_round_no_crash;
          Alcotest.test_case "takeover" `Quick test_second_coordinator_takes_over;
          Alcotest.test_case "adoption" `Quick test_adopted_estimate_survives_coordinator;
          Alcotest.test_case "commit-prefix" `Quick test_commit_prefix_decides_early;
          Alcotest.test_case "silent-killer" `Quick test_silent_killer_forces_f_plus_1;
          Alcotest.test_case "greedy-killer" `Quick test_greedy_killer_locks_first_value;
          Alcotest.test_case "teasing-killer" `Quick test_teasing_killer_churns_estimates;
          Alcotest.test_case "lonely-coordinator" `Quick test_coordinator_decides_even_if_alone;
          Alcotest.test_case "last-coordinator" `Quick test_last_coordinator_correct;
          Alcotest.test_case "figure1-pattern" `Quick test_message_pattern_matches_figure1;
          Alcotest.test_case "best-case-bits" `Quick test_bit_accounting_best_case;
        ] );
      ( "properties",
        [ prop_uniform_consensus; prop_decision_value_is_adopted_chain ] );
      ( "exhaustive",
        [
          Alcotest.test_case "n=3 all schedules" `Quick test_exhaustive_n3;
          Alcotest.test_case "n=4 all schedules" `Slow test_exhaustive_n4;
          Alcotest.test_case "n=5 single fault" `Quick test_exhaustive_n5_single_fault;
          Alcotest.test_case "n=5 two faults" `Slow test_exhaustive_n5_two_faults;
        ] );
    ]
