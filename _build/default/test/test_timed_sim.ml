(* Tests for the continuous-time substrate: heap ordering and the
   discrete-event engine's delivery, timer, crash and tie-break semantics. *)

open Model
open Timed_sim

(* --- Heap ----------------------------------------------------------------- *)

let test_heap_orders_by_time () =
  let h = Heap.create () in
  List.iter (fun t -> Heap.add h ~time:t ~rank:0 (int_of_float t))
    [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let popped = List.init 5 (fun _ -> Heap.pop h) in
  Alcotest.(check (list (option (pair (float 0.0) int)))) "sorted"
    [ Some (1.0, 1); Some (2.0, 2); Some (3.0, 3); Some (4.0, 4); Some (5.0, 5) ]
    popped;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_rank_tiebreak () =
  let h = Heap.create () in
  Heap.add h ~time:1.0 ~rank:2 "timer";
  Heap.add h ~time:1.0 ~rank:0 "msg";
  Heap.add h ~time:1.0 ~rank:1 "fd";
  Alcotest.(check (option (pair (float 0.0) string))) "msg first" (Some (1.0, "msg")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "fd second" (Some (1.0, "fd")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "timer last" (Some (1.0, "timer")) (Heap.pop h)

let test_heap_insertion_order_tiebreak () =
  let h = Heap.create () in
  Heap.add h ~time:1.0 ~rank:0 "first";
  Heap.add h ~time:1.0 ~rank:0 "second";
  Alcotest.(check (option (pair (float 0.0) string))) "fifo" (Some (1.0, "first")) (Heap.pop h)

let test_heap_random_sorted =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"heap pops in nondecreasing key order"
       QCheck2.Gen.(list_size (int_range 0 200) (float_bound_inclusive 1000.0))
       (fun times ->
         let h = Heap.create () in
         List.iter (fun t -> Heap.add h ~time:t ~rank:0 ()) times;
         let rec drain acc =
           match Heap.pop h with
           | None -> List.rev acc
           | Some (t, ()) -> drain (t :: acc)
         in
         let out = drain [] in
         List.length out = List.length times
         && out = List.sort Float.compare times))

(* --- Engine probe --------------------------------------------------------- *)

module Probe = struct
  type msg = Hello of int

  type state = { me : int; got : int }

  let name = "probe"
  let pp_msg ppf (Hello v) = Format.fprintf ppf "hello(%d)" v

  let init (_ : Process_intf.ctx) ~me ~proposal =
    let me = Pid.to_int me in
    let actions =
      if me = 1 then
        [
          Process_intf.Send (Pid.of_int 2, Hello proposal);
          Process_intf.Set_timer { at = 10.0; tag = 7 };
        ]
      else []
    in
    ({ me; got = 0 }, actions)

  let on_message state ~now:_ ~from:_ (Hello v) =
    (state, [ Process_intf.Decide v ])

  let on_timer state ~now:_ ~tag = (state, [ Process_intf.Decide (100 + tag) ])

  let on_suspicion state ~now:_ ~suspects:_ = (state, [])
end

module Runner = Timed_engine.Make (Probe)

let cfg ?latency ?crashes ?deadline ?seed () =
  Timed_engine.config ?latency ?crashes ?deadline ?seed ~n:2 ~t:1
    ~proposals:[| 42; 9 |] ()

let outcome res i = res.Timed_engine.outcomes.(i - 1)

let test_message_latency () =
  let res = Runner.run (cfg ~latency:(Timed_engine.Fixed 5.0) ()) in
  (match outcome res 2 with
  | Timed_engine.Decided { value; at } ->
    Alcotest.(check int) "value" 42 value;
    Alcotest.(check (float 1e-9)) "arrival time" 5.0 at
  | _ -> Alcotest.fail "p2 should decide");
  match outcome res 1 with
  | Timed_engine.Decided { value; at } ->
    Alcotest.(check int) "timer decision" 107 value;
    Alcotest.(check (float 1e-9)) "timer time" 10.0 at
  | _ -> Alcotest.fail "p1 should decide on its timer"

let test_crash_drops_events () =
  let res =
    Runner.run
      (cfg ~latency:(Timed_engine.Fixed 5.0)
         ~crashes:[ { Timed_engine.victim = Pid.of_int 2; at = 3.0; batch_prefix = 0 } ]
         ())
  in
  match outcome res 2 with
  | Timed_engine.Crashed { at } -> Alcotest.(check (float 1e-9)) "crash time" 3.0 at
  | _ -> Alcotest.fail "p2 should be crashed"

let test_crash_batch_prefix () =
  (* p1 crashes at time 0 (its init batch): prefix 0 sends nothing, prefix 1
     lets the Hello out. *)
  let run prefix =
    Runner.run
      (cfg ~latency:(Timed_engine.Fixed 5.0)
         ~crashes:[ { Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = prefix } ]
         ())
  in
  let res0 = run 0 in
  Alcotest.(check int) "nothing sent" 0 res0.Timed_engine.msgs_sent;
  (match outcome res0 2 with
  | Timed_engine.Undecided -> ()
  | _ -> Alcotest.fail "p2 should be undecided");
  let res1 = run 1 in
  Alcotest.(check int) "one message out" 1 res1.Timed_engine.msgs_sent;
  match outcome res1 2 with
  | Timed_engine.Decided { value; _ } -> Alcotest.(check int) "value" 42 value
  | _ -> Alcotest.fail "p2 should decide"

let test_deadline () =
  let res =
    Runner.run (cfg ~latency:(Timed_engine.Fixed 5.0) ~deadline:4.0 ()) in
  match outcome res 2 with
  | Timed_engine.Undecided -> ()
  | _ -> Alcotest.fail "message after deadline must not be processed"

let test_determinism () =
  let go () =
    let res =
      Runner.run
        (cfg ~latency:(Timed_engine.Uniform { lo = 1.0; hi = 9.0 }) ~seed:99L ())
    in
    Timed_engine.decisions res
  in
  Alcotest.(check bool) "same seed, same run" true (go () = go ())

(* Tie-break check: a message arriving at exactly a timer's time is
   processed first. *)
module Tie = struct
  type msg = Ping

  type state = { me : int; got_ping : bool }

  let name = "tie"
  let pp_msg ppf Ping = Format.pp_print_string ppf "ping"

  let init (_ : Process_intf.ctx) ~me ~proposal:_ =
    let me = Pid.to_int me in
    let actions =
      if me = 1 then [ Process_intf.Send (Pid.of_int 2, Ping) ]
      else [ Process_intf.Set_timer { at = 5.0; tag = 0 } ]
    in
    ({ me; got_ping = false }, actions)

  let on_message state ~now:_ ~from:_ Ping = ({ state with got_ping = true }, [])

  let on_timer state ~now:_ ~tag:_ =
    (state, [ Process_intf.Decide (if state.got_ping then 1 else 0) ])

  let on_suspicion state ~now:_ ~suspects:_ = (state, [])
end

module Tie_runner = Timed_engine.Make (Tie)

let test_message_beats_timer_at_tie () =
  let res =
    Tie_runner.run
      (Timed_engine.config ~latency:(Timed_engine.Fixed 5.0) ~n:2 ~t:1
         ~proposals:[| 0; 0 |] ())
  in
  match res.Timed_engine.outcomes.(1) with
  | Timed_engine.Decided { value; _ } ->
    Alcotest.(check int) "ping seen before timer" 1 value
  | _ -> Alcotest.fail "p2 should decide"

let test_fd_plan_delivery () =
  (* FD updates reach on_suspicion; use a probe that decides on first
     suspicion. *)
  let module Fd_probe = struct
    type msg = unit

    type state = unit

    let name = "fd-probe"
    let pp_msg ppf () = Format.pp_print_string ppf "unit"
    let init (_ : Process_intf.ctx) ~me:_ ~proposal:_ = ((), [])
    let on_message state ~now:_ ~from:_ () = (state, [])
    let on_timer state ~now:_ ~tag:_ = (state, [])

    let on_suspicion state ~now:_ ~suspects =
      (state, [ Process_intf.Decide (Pid.Set.cardinal suspects) ])
  end in
  let module R = Timed_engine.Make (Fd_probe) in
  let res =
    R.run
      (Timed_engine.config ~n:2 ~t:1 ~proposals:[| 0; 0 |]
         ~fd_plan:
           [
             {
               Timed_engine.observer = Pid.of_int 1;
               at = 2.5;
               suspects = Pid.set_of_ints [ 2 ];
             };
           ]
         ())
  in
  match res.Timed_engine.outcomes.(0) with
  | Timed_engine.Decided { value; at } ->
    Alcotest.(check int) "one suspect" 1 value;
    Alcotest.(check (float 1e-9)) "at plan time" 2.5 at
  | _ -> Alcotest.fail "p1 should see the fd update"

let test_config_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad latency" true
    (invalid (fun () ->
         Timed_engine.config ~latency:(Timed_engine.Fixed 0.0) ~n:2 ~t:1
           ~proposals:[| 1; 2 |] ()));
  Alcotest.(check bool) "duplicate victim" true
    (invalid (fun () ->
         Timed_engine.config
           ~crashes:
             [
               { Timed_engine.victim = Pid.of_int 1; at = 1.0; batch_prefix = 0 };
               { Timed_engine.victim = Pid.of_int 1; at = 2.0; batch_prefix = 0 };
             ]
           ~n:2 ~t:1 ~proposals:[| 1; 2 |] ()));
  Alcotest.(check bool) "bad uniform" true
    (invalid (fun () ->
         Timed_engine.config
           ~latency:(Timed_engine.Uniform { lo = 5.0; hi = 1.0 })
           ~n:2 ~t:1 ~proposals:[| 1; 2 |] ()))

let () =
  Alcotest.run "timed_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "time-order" `Quick test_heap_orders_by_time;
          Alcotest.test_case "rank-tiebreak" `Quick test_heap_rank_tiebreak;
          Alcotest.test_case "fifo-tiebreak" `Quick test_heap_insertion_order_tiebreak;
          test_heap_random_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "latency" `Quick test_message_latency;
          Alcotest.test_case "crash-drops" `Quick test_crash_drops_events;
          Alcotest.test_case "batch-prefix" `Quick test_crash_batch_prefix;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "tie-break" `Quick test_message_beats_timer_at_tie;
          Alcotest.test_case "fd-plan" `Quick test_fd_plan_delivery;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
    ]
