(* Tests for the asynchronous substrate: the ◇S plan generator and MR99. *)

open Model
open Timed_sim

let crash pid at = (Pid.of_int pid, at)

(* --- ◇S plan -------------------------------------------------------------- *)

let test_fd_s_properties () =
  let rng = Prng.Rng.of_int 11 in
  for _ = 1 to 30 do
    let crashes = [ crash 2 5.0; crash 4 60.0 ] in
    let plan =
      Async_cons.Fd_s.plan ~rng ~n:5 ~crashes ~trusted:(Pid.of_int 1) ~gst:50.0
        ~detect_lag:2.0 ~noise_events:3
    in
    Alcotest.(check bool) "eventually accurate" true
      (Async_cons.Fd_s.eventually_accurate ~trusted:(Pid.of_int 1) ~gst:50.0 plan);
    Alcotest.(check bool) "complete" true
      (Async_cons.Fd_s.complete ~n:5 ~crashes ~gst:50.0 ~detect_lag:2.0 plan)
  done

let test_fd_s_rejects_faulty_trusted () =
  let rng = Prng.Rng.of_int 12 in
  Alcotest.(check bool) "trusted must be correct" true
    (try
       ignore
         (Async_cons.Fd_s.plan ~rng ~n:3 ~crashes:[ crash 1 5.0 ]
            ~trusted:(Pid.of_int 1) ~gst:50.0 ~detect_lag:2.0 ~noise_events:0);
       false
     with Invalid_argument _ -> true)

(* --- MR99 ----------------------------------------------------------------- *)

module R = Timed_engine.Make (Async_cons.Mr99)

let run_mr99 ?(n = 5) ?(t = 2) ?(crashes = []) ?(noise = 2) ?(seed = 3)
    ?(proposals = [| 10; 20; 30; 40; 50 |]) () =
  let rng = Prng.Rng.of_int seed in
  let crash_times = List.map (fun (c : Timed_engine.crash_spec) -> (c.victim, c.at)) crashes in
  let faulty = List.map fst crash_times in
  let trusted =
    (* lowest-id correct process *)
    List.find
      (fun p -> not (List.exists (Pid.equal p) faulty))
      (Pid.all ~n)
  in
  let fd_plan =
    Async_cons.Fd_s.plan ~rng ~n ~crashes:crash_times ~trusted ~gst:50.0
      ~detect_lag:2.0 ~noise_events:noise
  in
  R.run
    (Timed_engine.config
       ~latency:(Timed_engine.Exponential { mean = 1.0; cap = 8.0 })
       ~crashes ~fd_plan ~deadline:100000.0
       ~seed:(Int64.of_int (seed + 1))
       ~n ~t ~proposals ())

let check_consensus ~context ~proposals res =
  (match Timed_engine.decided_values res with
  | [] | [ _ ] -> ()
  | vs ->
    Alcotest.fail
      (Printf.sprintf "%s: agreement violated: %s" context
         (String.concat "," (List.map string_of_int vs))));
  List.iter
    (fun v ->
      Alcotest.(check bool) (context ^ ": validity") true
        (Array.exists (Int.equal v) proposals))
    (Timed_engine.decided_values res);
  Alcotest.(check bool) (context ^ ": termination") true
    (Timed_engine.correct_all_decided res)

let test_no_crash_decides_coordinator_value () =
  let proposals = [| 10; 20; 30; 40; 50 |] in
  let res = run_mr99 ~noise:0 ~proposals () in
  check_consensus ~context:"no crash" ~proposals res;
  Alcotest.(check (list int)) "p1 imposes" [ 10 ]
    (Timed_engine.decided_values res)

let test_no_crash_message_structure () =
  (* Crash-free round 1 with n = 5: (n-1) EST + n(n-1) AUX + at most n(n-1)
     DECIDE relays — between n^2-1 and (2n+1)(n-1) messages.  This is the
     n(n-1)-vs-(n-1) contrast of the Section 4 bridge. *)
  let n = 5 in
  let res = run_mr99 ~noise:0 ~proposals:[| 10; 20; 30; 40; 50 |] () in
  let lo = (n * n) - 1 and hi = ((2 * n) + 1) * (n - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "msgs %d within [%d, %d]" res.Timed_engine.msgs_sent lo hi)
    true
    (res.Timed_engine.msgs_sent >= lo && res.Timed_engine.msgs_sent <= hi)

let test_coordinator_crash_rotates () =
  let proposals = [| 10; 20; 30; 40; 50 |] in
  let res =
    run_mr99 ~noise:0
      ~crashes:[ { Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 0 } ]
      ~proposals ()
  in
  check_consensus ~context:"p1 silent" ~proposals res;
  Alcotest.(check (list int)) "p2 imposes in round 2" [ 20 ]
    (Timed_engine.decided_values res)

let test_partial_est_broadcast () =
  (* p1 dies mid-EST-broadcast (2 of 4 sent): some aux = 10, some ⊥; no
     quorum of all-10 in round 1 unless enough arrive, but agreement must
     hold either way. *)
  let proposals = [| 10; 20; 30; 40; 50 |] in
  let res =
    run_mr99 ~noise:0
      ~crashes:[ { Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 2 } ]
      ~proposals ()
  in
  check_consensus ~context:"partial est" ~proposals res

let test_rejects_large_t () =
  Alcotest.(check bool) "t >= n/2 rejected" true
    (try
       ignore
         (R.run (Timed_engine.config ~n:4 ~t:2 ~proposals:[| 1; 2; 3; 4 |] ()));
       false
     with Invalid_argument _ -> true)

let prop_mr99_uniform =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:120 ~name:"mr99: uniform consensus under crashes + noise"
       QCheck2.Gen.(
         let* n = int_range 4 7 in
         let t = (n - 1) / 2 in
         let* f = int_range 0 t in
         let* seed = int_range 0 100000 in
         return (n, t, f, seed))
       (fun (n, t, f, seed) ->
         let rng = Prng.Rng.of_int (seed + 7919) in
         let victims =
           Prng.Rng.sample_without_replacement rng f (List.init n (fun i -> i + 1))
         in
         let crashes =
           List.map
             (fun v ->
               {
                 Timed_engine.victim = Pid.of_int v;
                 at = Prng.Rng.float rng 60.0;
                 batch_prefix = Prng.Rng.int rng (2 * n);
               })
             victims
         in
         let proposals = Array.init n (fun i -> (i + 1) * 7) in
         let res = run_mr99 ~n ~t ~crashes ~noise:3 ~seed ~proposals () in
         let ok_agreement =
           match Timed_engine.decided_values res with
           | [] | [ _ ] -> true
           | _ -> false
         in
         let ok_validity =
           List.for_all
             (fun v -> Array.exists (Int.equal v) proposals)
             (Timed_engine.decided_values res)
         in
         let ok_term = Timed_engine.correct_all_decided res in
         if ok_agreement && ok_validity && ok_term then true
         else
           QCheck2.Test.fail_reportf
             "n=%d t=%d f=%d seed=%d agreement=%b validity=%b termination=%b"
             n t f seed ok_agreement ok_validity ok_term))

let () =
  Alcotest.run "async"
    [
      ( "fd-s",
        [
          Alcotest.test_case "properties" `Quick test_fd_s_properties;
          Alcotest.test_case "faulty-trusted" `Quick test_fd_s_rejects_faulty_trusted;
        ] );
      ( "mr99",
        [
          Alcotest.test_case "no-crash" `Quick test_no_crash_decides_coordinator_value;
          Alcotest.test_case "msg-structure" `Quick test_no_crash_message_structure;
          Alcotest.test_case "rotation" `Quick test_coordinator_crash_rotates;
          Alcotest.test_case "partial-est" `Quick test_partial_est_broadcast;
          Alcotest.test_case "t-validation" `Quick test_rejects_large_t;
          prop_mr99_uniform;
        ] );
    ]
