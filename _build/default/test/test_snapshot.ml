(* Tests for the FIFO network and the Chandy–Lamport snapshot. *)

open Model

(* --- FIFO network --------------------------------------------------------- *)

let test_fifo_order () =
  let net = Snapshot.Fifo_net.create ~n:3 in
  let p1 = Pid.of_int 1 and p2 = Pid.of_int 2 in
  Snapshot.Fifo_net.send net ~from:p1 ~dest:p2 "a";
  Snapshot.Fifo_net.send net ~from:p1 ~dest:p2 "b";
  Snapshot.Fifo_net.send net ~from:p1 ~dest:p2 "c";
  Alcotest.(check (option string)) "a first" (Some "a")
    (Snapshot.Fifo_net.deliver net ~from:p1 ~dest:p2);
  Alcotest.(check (option string)) "b second" (Some "b")
    (Snapshot.Fifo_net.deliver net ~from:p1 ~dest:p2);
  Alcotest.(check int) "one left" 1
    (Snapshot.Fifo_net.channel_length net ~from:p1 ~dest:p2)

let test_fifo_channels_independent () =
  let net = Snapshot.Fifo_net.create ~n:3 in
  let p1 = Pid.of_int 1 and p2 = Pid.of_int 2 and p3 = Pid.of_int 3 in
  Snapshot.Fifo_net.send net ~from:p1 ~dest:p2 "to2";
  Snapshot.Fifo_net.send net ~from:p1 ~dest:p3 "to3";
  Snapshot.Fifo_net.send net ~from:p2 ~dest:p1 "back";
  Alcotest.(check int) "three in flight" 3 (Snapshot.Fifo_net.in_flight net);
  Alcotest.(check (option string)) "directed" (Some "to3")
    (Snapshot.Fifo_net.deliver net ~from:p1 ~dest:p3)

let test_fifo_rejects_self_channel () =
  let net = Snapshot.Fifo_net.create ~n:2 in
  Alcotest.(check bool) "self channel" true
    (try
       Snapshot.Fifo_net.send net ~from:(Pid.of_int 1) ~dest:(Pid.of_int 1) "x";
       false
     with Invalid_argument _ -> true)

let test_fifo_random_delivery_drains () =
  let rng = Prng.Rng.of_int 3 in
  let net = Snapshot.Fifo_net.create ~n:4 in
  for i = 1 to 4 do
    for j = 1 to 4 do
      if i <> j then
        Snapshot.Fifo_net.send net ~from:(Pid.of_int i) ~dest:(Pid.of_int j) (i, j)
    done
  done;
  let seen = ref 0 in
  let rec drain () =
    match Snapshot.Fifo_net.deliver_random rng net with
    | Some (from, dest, (i, j)) ->
      Alcotest.(check (pair int int)) "payload matches channel"
        (Pid.to_int from, Pid.to_int dest)
        (i, j);
      incr seen;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all delivered" 12 !seen;
  Alcotest.(check int) "empty" 0 (Snapshot.Fifo_net.in_flight net)

(* --- Chandy–Lamport ------------------------------------------------------- *)

let test_snapshot_conservation_default () =
  let r = Snapshot.Chandy_lamport.run (Snapshot.Chandy_lamport.config ~n:4 ()) in
  Alcotest.(check int) "expected total" 40 r.Snapshot.Chandy_lamport.expected_total;
  Alcotest.(check bool) "conservation" true r.Snapshot.Chandy_lamport.conservation_ok;
  Alcotest.(check bool) "consistent cut" true r.Snapshot.Chandy_lamport.consistent_cut;
  Alcotest.(check int) "final balances conserve too" 40
    r.Snapshot.Chandy_lamport.final_balance_total

let test_snapshot_many_seeds () =
  List.iter
    (fun seed ->
      List.iter
        (fun n ->
          let r =
            Snapshot.Chandy_lamport.run
              (Snapshot.Chandy_lamport.config ~n ~seed ())
          in
          let ctx = Printf.sprintf "n=%d seed=%d" n seed in
          Alcotest.(check bool) (ctx ^ " conservation") true
            r.Snapshot.Chandy_lamport.conservation_ok;
          Alcotest.(check bool) (ctx ^ " consistency") true
            r.Snapshot.Chandy_lamport.consistent_cut;
          Alcotest.(check int) (ctx ^ " markers = n(n-1)") (n * (n - 1))
            r.Snapshot.Chandy_lamport.markers_sent)
        [ 2; 3; 5; 8 ])
    [ 1; 2; 3; 17; 42; 99; 1234 ]

let test_snapshot_early_initiation () =
  (* Initiating before any transfer: the snapshot equals the initial
     distribution with empty channels. *)
  let r =
    Snapshot.Chandy_lamport.run
      (Snapshot.Chandy_lamport.config ~n:3 ~initiate_at:0 ~total_steps:200 ())
  in
  Alcotest.(check bool) "conservation" true r.Snapshot.Chandy_lamport.conservation_ok;
  Alcotest.(check bool) "consistent" true r.Snapshot.Chandy_lamport.consistent_cut

let test_snapshot_late_initiation () =
  let r =
    Snapshot.Chandy_lamport.run
      (Snapshot.Chandy_lamport.config ~n:5 ~initiate_at:390 ~total_steps:400 ())
  in
  Alcotest.(check bool) "conservation" true r.Snapshot.Chandy_lamport.conservation_ok

let test_snapshot_captures_in_flight_sometimes () =
  (* Over a pool of seeds, at least one snapshot must record tokens in
     transit — otherwise the channel-recording machinery is dead code. *)
  let any_in_flight =
    List.exists
      (fun seed ->
        let r =
          Snapshot.Chandy_lamport.run
            (Snapshot.Chandy_lamport.config ~n:5 ~seed ())
        in
        r.Snapshot.Chandy_lamport.snapshot.Snapshot.Chandy_lamport.channels <> [])
      (List.init 20 (fun i -> i + 1))
  in
  Alcotest.(check bool) "some snapshot catches in-flight tokens" true any_in_flight

let test_config_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "n too small" true
    (invalid (fun () -> Snapshot.Chandy_lamport.config ~n:1 ()));
  Alcotest.(check bool) "initiation outside run" true
    (invalid (fun () ->
         Snapshot.Chandy_lamport.config ~n:3 ~initiate_at:500 ~total_steps:400 ()))

let () =
  Alcotest.run "snapshot"
    [
      ( "fifo-net",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "independence" `Quick test_fifo_channels_independent;
          Alcotest.test_case "self-channel" `Quick test_fifo_rejects_self_channel;
          Alcotest.test_case "random-drain" `Quick test_fifo_random_delivery_drains;
        ] );
      ( "chandy-lamport",
        [
          Alcotest.test_case "conservation" `Quick test_snapshot_conservation_default;
          Alcotest.test_case "many-seeds" `Quick test_snapshot_many_seeds;
          Alcotest.test_case "early" `Quick test_snapshot_early_initiation;
          Alcotest.test_case "late" `Quick test_snapshot_late_initiation;
          Alcotest.test_case "in-flight" `Quick test_snapshot_captures_in_flight_sometimes;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
    ]
