(* Unit tests for the model library: pids, crash points, schedules. *)

open Model

let test_pid_validation () =
  Alcotest.check_raises "zero" (Invalid_argument "Pid.of_int: 0 < 1") (fun () ->
      ignore (Pid.of_int 0));
  Alcotest.(check int) "roundtrip" 3 (Pid.to_int (Pid.of_int 3))

let test_pid_all () =
  Alcotest.(check (list int)) "all 4" [ 1; 2; 3; 4 ]
    (List.map Pid.to_int (Pid.all ~n:4))

let test_pid_range () =
  Alcotest.(check (list int)) "range" [ 2; 3 ]
    (List.map Pid.to_int (Pid.range ~lo:2 ~hi:3));
  Alcotest.(check (list int)) "empty range" []
    (List.map Pid.to_int (Pid.range ~lo:4 ~hi:3))

let test_pid_range_desc () =
  (* The commit-sending order of Figure 1: p_n first, down to p_{i+1}. *)
  Alcotest.(check (list int)) "desc" [ 5; 4; 3 ]
    (List.map Pid.to_int (Pid.range_desc ~hi:5 ~lo:3));
  Alcotest.(check (list int)) "empty desc" []
    (List.map Pid.to_int (Pid.range_desc ~hi:2 ~lo:3))

let test_pid_pp () =
  Alcotest.(check string) "pp" "p7" (Pid.to_string (Pid.of_int 7))

let test_crash_validation () =
  Alcotest.check_raises "round 0" (Invalid_argument "Crash.make: round < 1")
    (fun () -> ignore (Crash.make ~round:0 Crash.Before_send));
  Alcotest.check_raises "neg prefix"
    (Invalid_argument "Crash.make: negative prefix") (fun () ->
      ignore (Crash.make ~round:1 (Crash.After_data (-1))))

let test_crash_model_compat () =
  let after_data = Crash.make ~round:1 (Crash.After_data 2) in
  Alcotest.(check bool) "extended ok" true
    (Result.is_ok (Crash.valid_for Model_kind.Extended after_data));
  Alcotest.(check bool) "classic rejected" true
    (Result.is_error (Crash.valid_for Model_kind.Classic after_data));
  let before = Crash.make ~round:1 Crash.Before_send in
  Alcotest.(check bool) "classic before ok" true
    (Result.is_ok (Crash.valid_for Model_kind.Classic before))

let test_crash_equal () =
  let s = Pid.set_of_ints [ 1; 2 ] in
  Alcotest.(check bool) "equal" true
    (Crash.equal
       (Crash.make ~round:2 (Crash.During_data s))
       (Crash.make ~round:2 (Crash.During_data (Pid.set_of_ints [ 2; 1 ]))));
  Alcotest.(check bool) "differ by point" false
    (Crash.equal
       (Crash.make ~round:2 Crash.Before_send)
       (Crash.make ~round:2 Crash.After_send))

let ev round point = Crash.make ~round point

let test_schedule_basics () =
  let s =
    Schedule.of_list
      [
        (Pid.of_int 1, ev 1 Crash.Before_send);
        (Pid.of_int 3, ev 2 Crash.After_send);
      ]
  in
  Alcotest.(check int) "f" 2 (Schedule.f s);
  Alcotest.(check bool) "finds p1" true (Schedule.find s (Pid.of_int 1) <> None);
  Alcotest.(check bool) "p2 correct" true (Schedule.find s (Pid.of_int 2) = None);
  Alcotest.(check int) "max round" 2 (Schedule.max_crash_round s);
  Alcotest.(check (list int)) "faulty" [ 1; 3 ]
    (List.map Pid.to_int (Pid.Set.elements (Schedule.faulty s)))

let test_schedule_rejects_duplicates () =
  Alcotest.check_raises "dup" (Invalid_argument "Schedule.add: p1 already crashes")
    (fun () ->
      ignore
        (Schedule.of_list
           [
             (Pid.of_int 1, ev 1 Crash.Before_send);
             (Pid.of_int 1, ev 2 Crash.After_send);
           ]))

let test_schedule_empty () =
  Alcotest.(check int) "f" 0 (Schedule.f Schedule.empty);
  Alcotest.(check int) "max round" 0 (Schedule.max_crash_round Schedule.empty);
  Alcotest.(check string) "pp" "no-crash" (Schedule.to_string Schedule.empty)

let test_crashes_per_round () =
  let s =
    Schedule.of_list
      [
        (Pid.of_int 1, ev 1 Crash.Before_send);
        (Pid.of_int 2, ev 1 Crash.After_send);
        (Pid.of_int 3, ev 3 Crash.Before_send);
      ]
  in
  Alcotest.(check (list (pair int int))) "per round" [ (1, 2); (3, 1) ]
    (Schedule.crashes_per_round s);
  Alcotest.(check bool) "not one-per-round" false
    (Schedule.at_most_one_crash_per_round s);
  let s' =
    Schedule.of_list
      [
        (Pid.of_int 1, ev 1 Crash.Before_send);
        (Pid.of_int 3, ev 3 Crash.Before_send);
      ]
  in
  Alcotest.(check bool) "one-per-round" true
    (Schedule.at_most_one_crash_per_round s')

let test_schedule_validate () =
  let ok = Schedule.of_list [ (Pid.of_int 2, ev 1 (Crash.After_data 1)) ] in
  Alcotest.(check bool) "extended valid" true
    (Result.is_ok (Schedule.validate ~model:Model_kind.Extended ~n:3 ~t:1 ok));
  Alcotest.(check bool) "classic invalid point" true
    (Result.is_error (Schedule.validate ~model:Model_kind.Classic ~n:3 ~t:1 ok));
  Alcotest.(check bool) "f exceeds t" true
    (Result.is_error (Schedule.validate ~model:Model_kind.Extended ~n:3 ~t:0 ok));
  let out_of_range =
    Schedule.of_list [ (Pid.of_int 9, ev 1 Crash.Before_send) ]
  in
  Alcotest.(check bool) "pid out of range" true
    (Result.is_error
       (Schedule.validate ~model:Model_kind.Extended ~n:3 ~t:2 out_of_range))

let test_model_kind () =
  Alcotest.(check bool) "eq" true Model_kind.(equal Classic Classic);
  Alcotest.(check bool) "neq" false Model_kind.(equal Classic Extended);
  Alcotest.(check string) "pp" "extended" Model_kind.(to_string Extended)

let () =
  Alcotest.run "model"
    [
      ( "pid",
        [
          Alcotest.test_case "validation" `Quick test_pid_validation;
          Alcotest.test_case "all" `Quick test_pid_all;
          Alcotest.test_case "range" `Quick test_pid_range;
          Alcotest.test_case "range-desc" `Quick test_pid_range_desc;
          Alcotest.test_case "pp" `Quick test_pid_pp;
        ] );
      ( "crash",
        [
          Alcotest.test_case "validation" `Quick test_crash_validation;
          Alcotest.test_case "model-compat" `Quick test_crash_model_compat;
          Alcotest.test_case "equal" `Quick test_crash_equal;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "basics" `Quick test_schedule_basics;
          Alcotest.test_case "duplicates" `Quick test_schedule_rejects_duplicates;
          Alcotest.test_case "empty" `Quick test_schedule_empty;
          Alcotest.test_case "per-round" `Quick test_crashes_per_round;
          Alcotest.test_case "validate" `Quick test_schedule_validate;
          Alcotest.test_case "model-kind" `Quick test_model_kind;
        ] );
    ]
