(* Tests for the closed-form complexity formulas (Theorem 2, Section 2.2)
   and the wall-clock cost model — including cross-checks against measured
   message counts from actual worst-case runs. *)

open Sync_sim
open Helpers

let test_round_bounds () =
  Alcotest.(check int) "rwwc f=0" 1 (Complexity.Formulas.rwwc_round_bound ~f:0);
  Alcotest.(check int) "rwwc f=3" 4 (Complexity.Formulas.rwwc_round_bound ~f:3);
  Alcotest.(check int) "classic small f" 4
    (Complexity.Formulas.classic_round_lower_bound ~t:5 ~f:2);
  Alcotest.(check int) "classic capped by t+1" 6
    (Complexity.Formulas.classic_round_lower_bound ~t:5 ~f:5);
  Alcotest.(check int) "extended lb" 3
    (Complexity.Formulas.extended_round_lower_bound ~f:2)

let test_best_case_bits () =
  Alcotest.(check int) "n=5 |v|=8" (4 * 9)
    (Complexity.Formulas.best_case_bits ~n:5 ~value_bits:8)

let brute_force_data_msgs ~n ~f =
  (* Sum of (n - i) for i = 1 .. f+1: coordinator i sends to p_{i+1}..p_n. *)
  List.fold_left ( + ) 0 (List.init (f + 1) (fun k -> n - (k + 1)))

let test_worst_case_data_closed_form () =
  for n = 2 to 12 do
    for f = 0 to n - 2 do
      Alcotest.(check int)
        (Printf.sprintf "n=%d f=%d" n f)
        (brute_force_data_msgs ~n ~f)
        (Complexity.Formulas.worst_case_data_msgs ~n ~f)
    done
  done

let test_commit_paper_vs_exact () =
  for n = 3 to 12 do
    for f = 0 to n - 2 do
      let paper = Complexity.Formulas.worst_case_commit_msgs_paper ~n ~f
      and exact = Complexity.Formulas.worst_case_commit_msgs_exact ~n ~f in
      Alcotest.(check bool)
        (Printf.sprintf "paper bound dominates (n=%d f=%d)" n f)
        true (exact <= paper);
      Alcotest.(check int) "off by f+1" (f + 1) (paper - exact)
    done
  done

let test_formula_validation () =
  Alcotest.(check bool) "rejects f >= n" true
    (try
       ignore (Complexity.Formulas.worst_case_data_msgs ~n:3 ~f:3);
       false
     with Invalid_argument _ -> true)

(* Cross-check: the greedy coordinator-killer run produces exactly the
   closed-form worst-case counts. *)
let test_measured_matches_formulas () =
  let value_bits = 16 in
  List.iter
    (fun (n, f) ->
      let res =
        run_rwwc ~value_bits ~n ~t:(n - 2)
          ~schedule:
            (Adversary.Strategies.coordinator_killer ~n ~f
               ~style:Adversary.Strategies.Greedy)
          ~proposals:(Engine.distinct_proposals n) ()
      in
      let label what = Printf.sprintf "n=%d f=%d %s" n f what in
      Alcotest.(check int) (label "data msgs")
        (Complexity.Formulas.worst_case_data_msgs ~n ~f)
        res.Run_result.data_msgs;
      Alcotest.(check int) (label "data bits")
        (Complexity.Formulas.worst_case_data_bits ~n ~f ~value_bits)
        res.Run_result.data_bits;
      Alcotest.(check int) (label "commit msgs")
        (Complexity.Formulas.worst_case_commit_msgs_exact ~n ~f)
        res.Run_result.sync_msgs;
      Alcotest.(check bool) (label "paper bound respected") true
        (Run_result.total_bits res
        <= Complexity.Formulas.worst_case_bits_paper ~n ~f ~value_bits);
      Alcotest.(check bool) (label "message bound respected") true
        (Run_result.total_msgs res
        <= Complexity.Formulas.worst_case_total_msgs_paper ~n ~f);
      Alcotest.(check int) (label "exact total messages")
        (Complexity.Formulas.worst_case_data_msgs ~n ~f
        + Complexity.Formulas.worst_case_commit_msgs_exact ~n ~f)
        (Run_result.total_msgs res))
    [ (4, 0); (4, 1); (4, 2); (6, 3); (8, 2); (10, 6); (12, 10) ]

let test_best_case_measured () =
  let value_bits = 32 in
  for n = 2 to 10 do
    let res =
      run_rwwc ~value_bits ~n ~t:(max 1 (n - 2)) ~schedule:Model.Schedule.empty
        ~proposals:(Engine.distinct_proposals n) ()
    in
    Alcotest.(check int)
      (Printf.sprintf "n=%d best bits" n)
      (Complexity.Formulas.best_case_bits ~n ~value_bits)
      (Run_result.total_bits res)
  done

(* --- Cost model ----------------------------------------------------------- *)

let cm = Timing.Cost_model.make ~d_round:100.0 ~delta:1.0 ~d_detect:2.0 ()

let feq a b = Float.abs (a -. b) < 1e-9

let test_times () =
  Alcotest.(check bool) "classic" true (feq 300.0 (Timing.Cost_model.classic_time cm ~rounds:3));
  Alcotest.(check bool) "extended" true (feq 303.0 (Timing.Cost_model.extended_time cm ~rounds:3));
  Alcotest.(check bool) "fast-fd" true (feq 106.0 (Timing.Cost_model.fast_fd_time cm ~f:3))

let test_crossover () =
  (* D/delta = 100: the extended model wins until f + 1 >= 100. *)
  Alcotest.(check int) "crossover f" 99 (Timing.Cost_model.crossover_f cm);
  Alcotest.(check bool) "f=0 wins" true (Timing.Cost_model.extended_beats_classic cm ~f:0);
  Alcotest.(check bool) "f=98 wins" true (Timing.Cost_model.extended_beats_classic cm ~f:98);
  Alcotest.(check bool) "f=99 loses" false (Timing.Cost_model.extended_beats_classic cm ~f:99)

let test_cost_model_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "neg D" true
    (invalid (fun () -> Timing.Cost_model.make ~d_round:(-1.0) ()));
  Alcotest.(check bool) "delta > D" true
    (invalid (fun () -> Timing.Cost_model.make ~d_round:10.0 ~delta:20.0 ()));
  Alcotest.(check bool) "defaults ok" true
    (try ignore (Timing.Cost_model.make ~d_round:10.0 ()); true
     with Invalid_argument _ -> false)

let test_defaults_ratio () =
  let c = Timing.Cost_model.make ~d_round:200.0 () in
  Alcotest.(check bool) "delta defaults to D/100" true
    (feq 2.0 c.Timing.Cost_model.delta)

let () =
  Alcotest.run "complexity"
    [
      ( "formulas",
        [
          Alcotest.test_case "round-bounds" `Quick test_round_bounds;
          Alcotest.test_case "best-case" `Quick test_best_case_bits;
          Alcotest.test_case "worst-data-closed-form" `Quick test_worst_case_data_closed_form;
          Alcotest.test_case "commit-paper-vs-exact" `Quick test_commit_paper_vs_exact;
          Alcotest.test_case "validation" `Quick test_formula_validation;
          Alcotest.test_case "measured-worst" `Quick test_measured_matches_formulas;
          Alcotest.test_case "measured-best" `Quick test_best_case_measured;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "times" `Quick test_times;
          Alcotest.test_case "crossover" `Quick test_crossover;
          Alcotest.test_case "validation" `Quick test_cost_model_validation;
          Alcotest.test_case "defaults" `Quick test_defaults_ratio;
        ] );
    ]
