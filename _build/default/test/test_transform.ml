(* Tests for the Section 2.2 computability-equivalence constructions:
   Extended_on_classic (the interesting direction) and Classic_on_extended. *)

open Model
open Sync_sim
open Helpers

module Compiled = Core.Extended_on_classic.Make (Core.Rwwc)
module Compiled_runner = Engine.Make (Compiled)
module Wrapped_flood = Core.Classic_on_extended.Make (Baselines.Flood_set)
module Wrapped_runner = Engine.Make (Wrapped_flood)

let sched l =
  Schedule.of_list
    (List.map (fun (p, r, pt) -> (Pid.of_int p, Crash.make ~round:r pt)) l)

let run_compiled ~n ~t ~ext_schedule ~proposals () =
  let schedule = Compiled.translate_schedule ~n ext_schedule in
  Compiled_runner.run
    (Engine.config ~max_rounds:(n * (t + 2)) ~schedule ~n ~t ~proposals ())

let decisions_as_extended ~n res =
  List.map
    (fun (pid, v, r) -> (Pid.to_int pid, v, Compiled.to_extended_round ~n r))
    (Run_result.decisions res)

let native_decisions res =
  List.map (fun (pid, v, r) -> (Pid.to_int pid, v, r)) (Run_result.decisions res)

let test_round_mapping () =
  Alcotest.(check int) "block size" 4 (Compiled.block_size ~n:4);
  Alcotest.(check int) "round 1 -> 1" 1 (Compiled.to_extended_round ~n:4 1);
  Alcotest.(check int) "round 4 -> 1" 1 (Compiled.to_extended_round ~n:4 4);
  Alcotest.(check int) "round 5 -> 2" 2 (Compiled.to_extended_round ~n:4 5)

let test_no_crash_same_decisions () =
  let n = 4 and t = 2 in
  let proposals = [| 9; 2; 3; 4 |] in
  let native =
    run_rwwc ~n ~t ~schedule:Schedule.empty ~proposals ()
  in
  let compiled = run_compiled ~n ~t ~ext_schedule:Schedule.empty ~proposals () in
  Alcotest.(check (list (triple int int int))) "same decisions"
    (native_decisions native)
    (decisions_as_extended ~n compiled);
  (* The compiled run pays the blow-up: n classic rounds per extended one. *)
  Alcotest.(check int) "n sub-rounds" n compiled.Run_result.rounds_executed

let equivalent_on ~n ~t ~proposals ext_schedule =
  let native = run_rwwc ~n ~t ~schedule:ext_schedule ~proposals () in
  let compiled = run_compiled ~n ~t ~ext_schedule ~proposals () in
  Alcotest.(check (list (triple int int int)))
    (Printf.sprintf "decisions match on %s" (Schedule.to_string ext_schedule))
    (native_decisions native)
    (decisions_as_extended ~n compiled)

let test_crash_scenarios_match_native () =
  let n = 4 and t = 2 in
  let proposals = [| 10; 20; 30; 40 |] in
  List.iter
    (equivalent_on ~n ~t ~proposals)
    [
      sched [ (1, 1, Crash.Before_send) ];
      sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 2 ])) ];
      sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 3; 4 ])) ];
      sched [ (1, 1, Crash.After_data 0) ];
      sched [ (1, 1, Crash.After_data 1) ];
      sched [ (1, 1, Crash.After_data 2) ];
      sched [ (1, 1, Crash.After_data 3) ];
      sched [ (1, 1, Crash.After_send) ];
      sched [ (1, 1, Crash.After_data 1); (2, 2, Crash.Before_send) ];
      sched [ (1, 1, Crash.Before_send); (2, 2, Crash.During_data (Pid.set_of_ints [ 3 ])) ];
    ]

let test_exhaustive_equivalence_n3 () =
  (* Every extended schedule for n=3 produces identical decisions natively
     and through the compilation. *)
  let n = 3 and t = 1 in
  let proposals = [| 5; 6; 7 |] in
  Seq.iter
    (fun ext_schedule -> equivalent_on ~n ~t ~proposals ext_schedule)
    (Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n ~max_f:1
       ~max_round:2)

let prop_compiled_uniform_consensus =
  qtest ~count:200 "compiled rwwc still solves uniform consensus"
    QCheck2.Gen.(map (fun s -> s) (scenario_gen ~min_n:3 ~max_n:6 ~model:Model_kind.Extended ()))
    (fun s ->
      let res = run_compiled ~n:s.n ~t:s.t ~ext_schedule:s.schedule ~proposals:s.proposals () in
      match Spec.Properties.failures (Spec.Properties.uniform_consensus res) with
      | [] -> true
      | c :: _ ->
        QCheck2.Test.fail_reportf "%s on %s"
          (Format.asprintf "%a" Spec.Properties.pp_check c)
          (scenario_print s))

let test_classic_on_extended_flood () =
  (* The trivial embedding: FloodSet under the extended engine, including an
     extended-only crash point, which degrades to After_send for an
     algorithm that sends no control messages. *)
  let n = 4 and t = 2 in
  let res =
    Wrapped_runner.run
      (Engine.config ~n ~t
         ~schedule:(sched [ (1, 1, Crash.After_data 0) ])
         ~proposals:[| 3; 5; 6; 7 |] ())
  in
  Spec.Properties.assert_ok ~context:"wrapped floodset"
    (Spec.Properties.uniform_consensus ~bound:(t + 1) res);
  Alcotest.(check (list int)) "decides 3 (data completed)" [ 3 ]
    (Run_result.decided_values res)

let test_compiled_bit_accounting () =
  (* Control messages still cost one bit each through the compilation. *)
  let n = 3 and t = 1 in
  let res =
    run_compiled ~n ~t ~ext_schedule:Schedule.empty ~proposals:[| 1; 2; 3 |] ()
  in
  (* p1 sends 2 data messages (32 bits each by default) and 2 one-bit
     controls. *)
  Alcotest.(check int) "bits" ((2 * 32) + 2) (Run_result.total_bits res)

let () =
  Alcotest.run "transform"
    [
      ( "extended-on-classic",
        [
          Alcotest.test_case "round-mapping" `Quick test_round_mapping;
          Alcotest.test_case "no-crash" `Quick test_no_crash_same_decisions;
          Alcotest.test_case "crash-scenarios" `Quick test_crash_scenarios_match_native;
          Alcotest.test_case "exhaustive n=3" `Quick test_exhaustive_equivalence_n3;
          prop_compiled_uniform_consensus;
          Alcotest.test_case "bit-accounting" `Quick test_compiled_bit_accounting;
        ] );
      ( "classic-on-extended",
        [ Alcotest.test_case "floodset" `Quick test_classic_on_extended_flood ] );
    ]
