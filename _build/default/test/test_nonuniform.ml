(* Tests for the classic-model non-uniform early-deciding baseline: decides
   in min(f+1, t+1) rounds, keeps correct processes in agreement, but gives
   up uniform agreement — the exact property the extended model's f+1
   algorithm retains. *)

open Model
open Sync_sim
open Helpers

module Runner = Engine.Make (Baselines.Nonuniform_early)

let sched l =
  Schedule.of_list
    (List.map (fun (p, r, pt) -> (Pid.of_int p, Crash.make ~round:r pt)) l)

let run ?(n = 4) ?(t = 2) schedule =
  Runner.run (Engine.config ~schedule ~n ~t ~proposals:(Engine.distinct_proposals n) ())

let f_all res = Pid.Set.cardinal (Run_result.all_crashes res)

let bound ~t res = min (f_all res + 1) (t + 1)

let non_uniform_checks ~t res =
  [
    Spec.Properties.validity res;
    Spec.Properties.agreement res;
    Spec.Properties.termination res;
    Spec.Properties.round_bound ~bound:(bound ~t res) res;
  ]

let test_no_crash_one_round () =
  let res = run Schedule.empty in
  Alcotest.(check int) "one round" 1 res.Run_result.rounds_executed;
  List.iter
    (fun (_, v, r) ->
      Alcotest.(check (pair int int)) "min at round 1" (1, 1) (v, r))
    (Run_result.decisions res)

let test_decider_keeps_relaying () =
  (* p1 delivers 0... here value 1 to p3 only; p3 announces at round 1 but
     must relay so p2 joins the same value. *)
  let res =
    run ~n:3 ~t:2 (sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 3 ])) ])
  in
  Alcotest.(check (list int)) "both survivors decide 1" [ 1 ]
    (Run_result.decided_values res);
  Spec.Properties.assert_ok ~context:"relay" (non_uniform_checks ~t:2 res)

let test_uniform_violation_witness () =
  (* The decided value dies with its decider: p3 announces p1's value in
     round 1 and crashes before relaying; survivors decide differently. *)
  let res =
    run ~n:3 ~t:2
      (sched
         [
           (1, 1, Crash.During_data (Pid.set_of_ints [ 3 ]));
           (3, 2, Crash.Before_send);
         ])
  in
  Alcotest.(check bool) "uniform agreement violated" false
    (Spec.Properties.all_ok [ Spec.Properties.uniform_agreement res ]);
  Spec.Properties.assert_ok ~context:"witness still non-uniform-correct"
    (non_uniform_checks ~t:2 res);
  (* p3 is faulty in this run even though it decided. *)
  Alcotest.(check int) "f counts the post-decision crash" 2 (f_all res);
  Alcotest.(check bool) "p3 not correct" false
    (Pid.Set.mem (Pid.of_int 3) (Run_result.correct res))

let test_exhaustive_non_uniform_properties () =
  let n = 4 and t = 2 in
  let uniform_violations = ref 0 in
  Seq.iter
    (fun schedule ->
      let res = run ~n ~t schedule in
      Spec.Properties.assert_ok ~context:(Schedule.to_string schedule)
        (non_uniform_checks ~t res);
      if not (Spec.Properties.all_ok [ Spec.Properties.uniform_agreement res ])
      then incr uniform_violations)
    (Adversary.Enumerate.schedules ~model:Model_kind.Classic ~n ~max_f:2
       ~max_round:3);
  Alcotest.(check bool) "uniform agreement does break somewhere" true
    (!uniform_violations > 0)

let prop_non_uniform =
  qtest ~count:600 "nonuniform-early: validity/agreement/termination/f+1"
    (scenario_gen ~model:Model_kind.Classic ())
    (fun s ->
      let res =
        Runner.run
          (Engine.config ~schedule:s.schedule ~n:s.n ~t:s.t
             ~proposals:s.proposals ())
      in
      match
        Spec.Properties.failures (non_uniform_checks ~t:s.t res)
      with
      | [] -> true
      | c :: _ ->
        QCheck2.Test.fail_reportf "%s on %s"
          (Format.asprintf "%a" Spec.Properties.pp_check c)
          (scenario_print s))

let test_faster_than_uniform_baseline () =
  (* The point of EXP-UNI: with one crash this decides in 2 rounds where the
     uniform classic baseline needs 3. *)
  let schedule =
    Adversary.Strategies.coordinator_killer ~n:6 ~f:1
      ~style:Adversary.Strategies.Silent
  in
  let nu = run ~n:6 ~t:4 schedule in
  let es = run_es ~n:6 ~t:4 ~schedule ~proposals:(Engine.distinct_proposals 6) () in
  let last res = Option.get (Run_result.max_decision_round res) in
  Alcotest.(check int) "non-uniform at f+1" 2 (last nu);
  Alcotest.(check int) "uniform classic at f+2" 3 (last es)

let () =
  Alcotest.run "nonuniform"
    [
      ( "nonuniform-early",
        [
          Alcotest.test_case "no-crash" `Quick test_no_crash_one_round;
          Alcotest.test_case "relaying" `Quick test_decider_keeps_relaying;
          Alcotest.test_case "uniform-violation" `Quick test_uniform_violation_witness;
          Alcotest.test_case "exhaustive" `Quick test_exhaustive_non_uniform_properties;
          prop_non_uniform;
          Alcotest.test_case "f+1-vs-f+2" `Quick test_faster_than_uniform_baseline;
        ] );
    ]
