(* Tests for the fast failure detector device and the paced consensus. *)

open Model
open Timed_sim

let crash pid at = (Pid.of_int pid, at)

(* --- Device --------------------------------------------------------------- *)

let test_plan_safety_and_liveness () =
  let crashes = [ crash 1 0.0; crash 3 7.5 ] in
  let plan = Fastfd.Device.plan ~n:5 ~d:1.0 ~crashes () in
  Alcotest.(check bool) "safe" true (Fastfd.Device.safe ~crashes plan);
  Alcotest.(check bool) "live" true
    (Fastfd.Device.live ~n:5 ~d:1.0 ~crashes ~horizon:100.0 plan)

let test_plan_with_jitter () =
  let rng = Prng.Rng.of_int 5 in
  let crashes = [ crash 2 1.0; crash 4 3.0 ] in
  for _ = 1 to 50 do
    let plan = Fastfd.Device.plan ~rng ~n:5 ~d:2.0 ~crashes () in
    Alcotest.(check bool) "safe" true (Fastfd.Device.safe ~crashes plan);
    Alcotest.(check bool) "live" true
      (Fastfd.Device.live ~n:5 ~d:2.0 ~crashes ~horizon:100.0 plan)
  done

let test_plan_empty () =
  Alcotest.(check int) "no crashes, no updates" 0
    (List.length (Fastfd.Device.plan ~n:4 ~d:1.0 ~crashes:[] ()))

let test_published_bound () =
  Alcotest.(check (float 1e-9)) "D + f d" 106.0
    (Fastfd.Device.published_decision_bound ~big_d:100.0 ~d:2.0 ~f:3)

(* --- Paced consensus ------------------------------------------------------ *)

let d = 1.0
let big_d = 10.0

module P = Fastfd.Paced.Make (struct
  let d = d
  let big_d = big_d
end)

module R = Timed_engine.Make (P)

let run ?(n = 4) ?(latency = Timed_engine.Fixed big_d) ?(crashes = [])
    ?(proposals = [| 10; 20; 30; 40 |]) () =
  let crash_times = List.map (fun (c : Timed_engine.crash_spec) -> (c.victim, c.at)) crashes in
  let fd_plan = Fastfd.Device.plan ~n ~d ~crashes:crash_times () in
  R.run
    (Timed_engine.config ~latency ~crashes ~fd_plan ~n ~t:(n - 1) ~proposals ())

let check_uniform ~context res =
  (match Timed_engine.decided_values res with
  | [] | [ _ ] -> ()
  | vs ->
    Alcotest.fail
      (Printf.sprintf "%s: agreement violated: %s" context
         (String.concat "," (List.map string_of_int vs))));
  Alcotest.(check bool) (context ^ ": all correct decided") true
    (Timed_engine.correct_all_decided res)

let test_no_crash_decides_at_d () =
  let res = run () in
  check_uniform ~context:"no crash" res;
  Alcotest.(check (list int)) "p1's value" [ 10 ] (Timed_engine.decided_values res);
  match Timed_engine.max_decision_time res with
  | Some t -> Alcotest.(check (float 1e-9)) "decision by D" big_d t
  | None -> Alcotest.fail "nobody decided"

let test_silent_crash_takeover () =
  let res =
    run ~crashes:[ { Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 0 } ] ()
  in
  check_uniform ~context:"silent p1" res;
  Alcotest.(check (list int)) "p2's value" [ 20 ] (Timed_engine.decided_values res);
  match Timed_engine.max_decision_time res with
  | Some t ->
    Alcotest.(check (float 1e-9)) "T_2 + D" (P.worst_case_decision_time ~f:1) t
  | None -> Alcotest.fail "nobody decided"

let test_partial_est_adopted () =
  (* p1 dies after sending its estimate to p2 only (batch prefix 1; the
     batch is ests to p2,p3,p4 then commits p4,p3,p2).  p2 takes over and
     must impose the adopted 10. *)
  let res =
    run ~crashes:[ { Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 1 } ] ()
  in
  check_uniform ~context:"partial est" res;
  Alcotest.(check (list int)) "adopted value" [ 10 ] (Timed_engine.decided_values res)

let test_partial_commit_locks_value () =
  (* p1 completes all 3 ests and exactly one commit (to p4): p4 decides 10
     at D; everyone else must follow via p2's takeover with the adopted
     estimate. *)
  let res =
    run ~crashes:[ { Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 4 } ] ()
  in
  check_uniform ~context:"partial commit" res;
  Alcotest.(check (list int)) "locked" [ 10 ] (Timed_engine.decided_values res);
  match res.Timed_engine.outcomes.(3) with
  | Timed_engine.Decided { at; _ } -> Alcotest.(check (float 1e-9)) "p4 at D" big_d at
  | _ -> Alcotest.fail "p4 should decide first"

let test_two_crashes () =
  let res =
    run
      ~crashes:
        [
          { Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 0 };
          { Timed_engine.victim = Pid.of_int 2; at = P.slot_time 2; batch_prefix = 2 };
        ]
      ()
  in
  check_uniform ~context:"two crashes" res;
  match Timed_engine.max_decision_time res with
  | Some t ->
    Alcotest.(check bool)
      (Printf.sprintf "within worst case (%.1f <= %.1f)" t
         (P.worst_case_decision_time ~f:2))
      true
      (t <= P.worst_case_decision_time ~f:2 +. 1e-9)
  | None -> Alcotest.fail "nobody decided"

let prop_paced_uniform =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"paced: uniform consensus under random crashes"
       QCheck2.Gen.(
         let* n = int_range 3 6 in
         let* f = int_range 0 (n - 2) in
         let* seed = int_range 0 100000 in
         return (n, f, seed))
       (fun (n, f, seed) ->
         let rng = Prng.Rng.of_int seed in
         let victims =
           Prng.Rng.sample_without_replacement rng f (List.init n (fun i -> i + 1))
         in
         let crashes =
           List.map
             (fun v ->
               {
                 Timed_engine.victim = Pid.of_int v;
                 at = Prng.Rng.float rng (P.slot_time n +. big_d);
                 batch_prefix = Prng.Rng.int rng (2 * n);
               })
             victims
         in
         let proposals = Array.init n (fun i -> (i + 1) * 11) in
         let res =
           run ~n
             ~latency:(Timed_engine.Uniform { lo = 0.5; hi = big_d })
             ~crashes ~proposals ()
         in
         let ok_agreement =
           match Timed_engine.decided_values res with
           | [] | [ _ ] -> true
           | _ -> false
         in
         let ok_validity =
           List.for_all
             (fun v -> Array.exists (Int.equal v) proposals)
             (Timed_engine.decided_values res)
         in
         let ok_term = Timed_engine.correct_all_decided res in
         let ok_time =
           match Timed_engine.max_decision_time res with
           | None -> true
           | Some t -> t <= P.worst_case_decision_time ~f:(List.length victims) +. 1e-9
         in
         if ok_agreement && ok_validity && ok_term && ok_time then true
         else
           QCheck2.Test.fail_reportf
             "n=%d f=%d seed=%d agreement=%b validity=%b termination=%b time=%b"
             n f seed ok_agreement ok_validity ok_term ok_time))

let test_slot_times () =
  Alcotest.(check (float 1e-9)) "T_1" 0.0 (P.slot_time 1);
  Alcotest.(check (float 1e-9)) "T_3" (2.0 *. (d +. big_d)) (P.slot_time 3);
  Alcotest.(check (float 1e-9)) "worst f=0" big_d (P.worst_case_decision_time ~f:0)

let () =
  Alcotest.run "fastfd"
    [
      ( "device",
        [
          Alcotest.test_case "safety-liveness" `Quick test_plan_safety_and_liveness;
          Alcotest.test_case "jitter" `Quick test_plan_with_jitter;
          Alcotest.test_case "empty" `Quick test_plan_empty;
          Alcotest.test_case "published-bound" `Quick test_published_bound;
        ] );
      ( "paced",
        [
          Alcotest.test_case "slot-times" `Quick test_slot_times;
          Alcotest.test_case "no-crash" `Quick test_no_crash_decides_at_d;
          Alcotest.test_case "takeover" `Quick test_silent_crash_takeover;
          Alcotest.test_case "partial-est" `Quick test_partial_est_adopted;
          Alcotest.test_case "partial-commit" `Quick test_partial_commit_locks_value;
          Alcotest.test_case "two-crashes" `Quick test_two_crashes;
          prop_paced_uniform;
        ] );
    ]
