(* Shared test utilities: runners, qcheck generators and consensus-property
   assertions used by every suite. *)

open Model
open Sync_sim

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Runners ------------------------------------------------------------ *)

module Rwwc_runner = Engine.Make (Core.Rwwc)
module Flood_runner = Engine.Make (Baselines.Flood_set)
module Es_runner = Engine.Make (Baselines.Early_stopping)

let run_rwwc ?(record_trace = false) ?value_bits ~n ~t ~schedule ~proposals () =
  Rwwc_runner.run
    (Engine.config ?value_bits ~record_trace ~schedule ~n ~t ~proposals ())

let run_flood ?(record_trace = false) ~n ~t ~schedule ~proposals () =
  Flood_runner.run (Engine.config ~record_trace ~schedule ~n ~t ~proposals ())

let run_es ?(record_trace = false) ~n ~t ~schedule ~proposals () =
  Es_runner.run (Engine.config ~record_trace ~schedule ~n ~t ~proposals ())

(* The honest "f of the run": processes that actually crashed (a scheduled
   crash after the run ended, or after the process decided, did not
   happen). *)
let f_actual result = Pid.Set.cardinal (Run_result.crashed result)

let check_consensus ~context ~bound result =
  Spec.Properties.assert_ok ~context
    (Spec.Properties.uniform_consensus ~bound result)

(* --- Generators --------------------------------------------------------- *)

type scenario = {
  n : int;
  t : int;
  proposals : int array;
  schedule : Schedule.t;
  seed : int;
}

let pp_scenario fmt_sched s =
  Printf.sprintf "n=%d t=%d proposals=[%s] schedule=%s seed=%d" s.n s.t
    (String.concat ";" (Array.to_list (Array.map string_of_int s.proposals)))
    fmt_sched s.seed

let scenario_gen ?(min_n = 3) ?(max_n = 8) ~model () =
  let open QCheck2.Gen in
  let* n = int_range min_n max_n in
  let* t = int_range 1 (n - 1) in
  let* f = int_range 0 t in
  let* proposals = array_size (return n) (int_range 0 99) in
  let* seed = int_range 0 1_000_000 in
  let rng = Prng.Rng.of_int seed in
  let schedule =
    Adversary.Strategies.random ~rng ~model ~n ~f ~max_round:(t + 1)
  in
  return { n; t; proposals; schedule; seed }

let scenario_print s = pp_scenario (Schedule.to_string s.schedule) s
