(* Engine-level tests for the `Announce decision mode, using a probe that
   announces at round 1 and keeps broadcasting a counter — so we can observe
   that announced processes really keep participating, that their later
   crash is tracked as a post-decision crash, and that the run winds down
   once nobody is undecided. *)

open Model
open Sync_sim

module Probe = struct
  type msg = Tick of int

  type state = { me : int; n : int; ticks_seen : int }

  let name = "announce-probe"
  let model = Model_kind.Extended
  let decision_mode = `Announce
  let msg_bits ~value_bits:_ (Tick _) = 8
  let pp_msg ppf (Tick k) = Format.fprintf ppf "tick(%d)" k

  let init ~n ~t:_ ~me ~proposal:_ = { me = Pid.to_int me; n; ticks_seen = 0 }

  let data_sends state ~round =
    List.filter_map
      (fun dest ->
        if Pid.to_int dest = state.me then None else Some (dest, Tick round))
      (Pid.all ~n:state.n)

  let sync_sends _state ~round:_ = []

  (* p1 announces at round 1; p2 announces at round 2; everyone else at
     round 3 with the number of ticks they have seen. *)
  let compute state ~round ~data ~syncs:_ =
    let state = { state with ticks_seen = state.ticks_seen + List.length data } in
    if round = min state.me 3 then (state, Some (100 + state.ticks_seen))
    else (state, None)
end

module Runner = Engine.Make (Probe)

let sched l =
  Schedule.of_list
    (List.map (fun (p, r, pt) -> (Pid.of_int p, Crash.make ~round:r pt)) l)

let cfg ?(n = 4) ?(max_rounds = 5) schedule =
  Engine.config ~max_rounds ~schedule ~n ~t:(n - 1)
    ~proposals:(Engine.distinct_proposals n) ()

let decision res pid =
  match Run_result.status res (Pid.of_int pid) with
  | Run_result.Decided { value; at_round } -> (value, at_round)
  | _ -> Alcotest.fail "expected a decision"

let test_announced_keep_sending () =
  let res = Runner.run (cfg Schedule.empty) in
  (* Everyone hears 3 ticks per round.  p1 announces at round 1 (3 ticks),
     p2 at round 2 (6 ticks); if announced processes went silent, p3/p4
     would see fewer than 9 ticks by round 3. *)
  Alcotest.(check (pair int int)) "p1" (103, 1) (decision res 1);
  Alcotest.(check (pair int int)) "p2" (106, 2) (decision res 2);
  Alcotest.(check (pair int int)) "p3 heard every tick" (109, 3) (decision res 3);
  Alcotest.(check (pair int int)) "p4 heard every tick" (109, 3) (decision res 4);
  (* The run stops at round 3: nobody is undecided after that. *)
  Alcotest.(check int) "rounds" 3 res.Run_result.rounds_executed;
  Alcotest.(check bool) "no post-decision crashes" true
    (Pid.Set.is_empty res.Run_result.post_decision_crashes)

let test_post_decision_crash_tracked () =
  let res = Runner.run (cfg (sched [ (1, 2, Crash.Before_send) ])) in
  (* p1 announced at round 1, then crashed at round 2: its decision stands,
     it is not correct, and f counts it. *)
  Alcotest.(check (pair int int)) "p1 decision stands" (103, 1) (decision res 1);
  Alcotest.(check bool) "tracked" true
    (Pid.Set.mem (Pid.of_int 1) (Run_result.all_crashes res));
  Alcotest.(check bool) "not correct" false
    (Pid.Set.mem (Pid.of_int 1) (Run_result.correct res));
  Alcotest.(check int) "f_all" 1 (Pid.Set.cardinal (Run_result.all_crashes res));
  Alcotest.(check bool) "crashed-undecided set empty" true
    (Pid.Set.is_empty (Run_result.crashed res));
  (* p3/p4 miss p1's round-2 and round-3 ticks: 3 + 2 + 2 = 7. *)
  Alcotest.(check (pair int int)) "p3 missed p1's later ticks" (107, 3)
    (decision res 3)

let test_partial_send_then_announce_crash () =
  (* p1 crashes during its round-2 data step, after announcing: the partial
     sends still happen (to p3 only), then the crash is post-decision. *)
  let res =
    Runner.run (cfg (sched [ (1, 2, Crash.During_data (Pid.set_of_ints [ 3 ])) ]))
  in
  Alcotest.(check (pair int int)) "p1 decision stands" (103, 1) (decision res 1);
  (* p3: 3 (r1) + 3 (r2, incl p1's partial) + 2 (r3) = 8. *)
  Alcotest.(check (pair int int)) "p3" (108, 3) (decision res 3);
  (* p4: 3 + 2 + 2 = 7. *)
  Alcotest.(check (pair int int)) "p4" (107, 3) (decision res 4)

let test_crash_before_announce_is_plain_crash () =
  let res = Runner.run (cfg (sched [ (3, 2, Crash.Before_send) ])) in
  Alcotest.(check bool) "ordinary crash" true
    (Pid.Set.mem (Pid.of_int 3) (Run_result.crashed res));
  Alcotest.(check bool) "not post-decision" true
    (Pid.Set.is_empty res.Run_result.post_decision_crashes)

let test_max_rounds_stops_announced_senders () =
  (* With max_rounds 2, p3/p4 never reach their announcement round. *)
  let res = Runner.run (cfg ~max_rounds:2 Schedule.empty) in
  Alcotest.(check bool) "p3 undecided" true
    (Run_result.status res (Pid.of_int 3) = Run_result.Undecided);
  Alcotest.(check (pair int int)) "p1 decided" (103, 1) (decision res 1)

let () =
  Alcotest.run "announce"
    [
      ( "engine",
        [
          Alcotest.test_case "keep-sending" `Quick test_announced_keep_sending;
          Alcotest.test_case "post-decision-crash" `Quick test_post_decision_crash_tracked;
          Alcotest.test_case "partial-then-crash" `Quick test_partial_send_then_announce_crash;
          Alcotest.test_case "plain-crash" `Quick test_crash_before_announce_is_plain_crash;
          Alcotest.test_case "max-rounds" `Quick test_max_rounds_stops_announced_senders;
        ] );
    ]
