test/test_timed_sim.ml: Alcotest Array Float Format Heap List Model Pid Process_intf QCheck2 QCheck_alcotest Timed_engine Timed_sim
