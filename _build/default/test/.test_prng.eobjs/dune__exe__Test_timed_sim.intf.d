test/test_timed_sim.mli:
