test/test_async.ml: Alcotest Array Async_cons Int Int64 List Model Pid Printf Prng QCheck2 QCheck_alcotest String Timed_engine Timed_sim
