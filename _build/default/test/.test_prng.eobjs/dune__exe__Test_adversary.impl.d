test/test_adversary.ml: Adversary Alcotest Crash Hashtbl List Model Model_kind Pid Prng Schedule Seq
