test/test_announce.mli:
