test/test_rwwc.ml: Adversary Alcotest Array Crash Engine Format Helpers Int List Model Model_kind Pid Printf QCheck2 Run_result Schedule Seq Spec Sync_sim Trace
