test/test_model.ml: Alcotest Crash List Model Model_kind Pid Result Schedule
