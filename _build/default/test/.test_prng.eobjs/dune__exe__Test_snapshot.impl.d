test/test_snapshot.ml: Alcotest List Model Pid Printf Prng Snapshot
