test/test_nonuniform.mli:
