test/test_parallel.ml: Adversary Alcotest Array Fun Helpers List Model Parallel Printf Prng Sync_sim
