test/test_lan.ml: Adversary Alcotest Core Crash Helpers Lan List Model Pid Printf Prng QCheck2 Schedule Sync_sim Timed_sim
