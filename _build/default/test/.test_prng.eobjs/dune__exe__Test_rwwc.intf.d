test/test_rwwc.mli:
