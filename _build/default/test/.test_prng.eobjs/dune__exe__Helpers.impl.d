test/helpers.ml: Adversary Array Baselines Core Engine Model Pid Printf Prng QCheck2 QCheck_alcotest Run_result Schedule Spec String Sync_sim
