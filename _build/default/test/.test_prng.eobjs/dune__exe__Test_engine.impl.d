test/test_engine.ml: Alcotest Baselines Crash Engine Format List Model Model_kind Pid Run_result Schedule Sync_sim Trace
