test/test_fastfd.ml: Alcotest Array Fastfd Int List Model Pid Printf Prng QCheck2 QCheck_alcotest String Timed_engine Timed_sim
