test/test_announce.ml: Alcotest Crash Engine Format List Model Model_kind Pid Run_result Schedule Sync_sim
