test/test_invariants.ml: Adversary Alcotest Engine Format Helpers List Model Model_kind Pid QCheck2 Run_result Seq Spec Sync_sim Trace
