test/test_lower_bound.ml: Adversary Alcotest Array Core Crash Engine Format Helpers List Lower_bound Model Model_kind Pid Printf Run_result Schedule Seq Spec Sync_sim
