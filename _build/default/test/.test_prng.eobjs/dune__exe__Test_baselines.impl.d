test/test_baselines.ml: Adversary Alcotest Crash Engine Format Helpers List Model Model_kind Pid Printf QCheck2 Run_result Schedule Seq Spec Sync_sim
