test/test_fastfd.mli:
