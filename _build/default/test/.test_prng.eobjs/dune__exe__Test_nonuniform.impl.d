test/test_nonuniform.ml: Adversary Alcotest Baselines Crash Engine Format Helpers List Model Model_kind Option Pid QCheck2 Run_result Schedule Seq Spec Sync_sim
