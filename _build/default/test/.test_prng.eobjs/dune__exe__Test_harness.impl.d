test/test_harness.ml: Alcotest Array Diag Harness Helpers List Prng
