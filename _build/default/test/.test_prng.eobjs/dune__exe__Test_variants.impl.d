test/test_variants.ml: Adversary Alcotest Core Crash Engine List Model Model_kind Pid Run_result Schedule Seq Spec Sync_sim
