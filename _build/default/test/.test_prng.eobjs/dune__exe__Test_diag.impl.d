test/test_diag.ml: Alcotest Array Diag Float Helpers List Printf String
