test/test_complexity.ml: Adversary Alcotest Complexity Engine Float Helpers List Model Printf Run_result Sync_sim Timing
