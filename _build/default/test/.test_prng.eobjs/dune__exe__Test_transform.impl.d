test/test_transform.ml: Adversary Alcotest Baselines Core Crash Engine Format Helpers List Model Model_kind Pid Printf QCheck2 Run_result Schedule Seq Spec Sync_sim
