(* Tests for the ablation variants: each must break exactly the property the
   analysis predicts, and nothing more. *)

open Model
open Sync_sim

module Asc_runner = Engine.Make (Core.Rwwc_variants.Ascending_commit)
module Nocommit_runner = Engine.Make (Core.Rwwc_variants.Data_decide)
module Piggy_runner = Engine.Make (Core.Rwwc_variants.Piggyback_commit)

let sched l =
  Schedule.of_list
    (List.map (fun (p, r, pt) -> (Pid.of_int p, Crash.make ~round:r pt)) l)

let cfg ?(n = 4) ?(t = 2) schedule =
  Engine.config ~schedule ~n ~t ~proposals:(Engine.distinct_proposals n) ()

(* On failure-free runs every variant behaves exactly like the paper's
   algorithm: one round, coordinator's value. *)
let test_variants_agree_without_crashes () =
  let check name res =
    Alcotest.(check (list int)) (name ^ " decides 1") [ 1 ]
      (Run_result.decided_values res);
    Alcotest.(check int) (name ^ " one round") 1 res.Run_result.rounds_executed
  in
  check "ascending" (Asc_runner.run (cfg Schedule.empty));
  check "no-commit" (Nocommit_runner.run (cfg Schedule.empty));
  check "piggyback" (Piggy_runner.run (cfg Schedule.empty))

(* Ascending commits: agreement survives but the f+1 bound (and with f = t,
   termination) dies — the commit reaches the next coordinators first, which
   halt as deciders and leave the tail stranded. *)
let test_ascending_breaks_round_bound () =
  let res =
    Asc_runner.run (cfg (sched [ (1, 1, Crash.After_data 1) ]))
  in
  (* p2 decided in round 1 and halted; rounds 2 plays out empty; p3 takes
     over only in round 3 — beyond f+1 = 2. *)
  Alcotest.(check (list int)) "agreement still holds" [ 1 ]
    (Run_result.decided_values res);
  match Run_result.max_decision_round res with
  | Some r -> Alcotest.(check bool) "decision after f+1" true (r > 2)
  | None -> Alcotest.fail "expected decisions"

let test_ascending_breaks_termination_at_f_eq_t () =
  (* With t = 1 the run ends at round t+1 = 2 whose coordinator already
     halted: p3 and p4 are correct but never decide. *)
  let res =
    Asc_runner.run (cfg ~t:1 (sched [ (1, 1, Crash.After_data 1) ]))
  in
  Alcotest.(check bool) "termination violated" false
    (Run_result.all_correct_decided res)

let test_ascending_never_disagrees () =
  (* Exhaustive: ascending commits lose liveness, never safety. *)
  Seq.iter
    (fun schedule ->
      let res = Asc_runner.run (cfg schedule) in
      Spec.Properties.assert_ok
        ~context:(Schedule.to_string schedule)
        [ Spec.Properties.uniform_agreement res; Spec.Properties.validity res ])
    (Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n:4 ~max_f:2
       ~max_round:3)

let test_no_commit_breaks_agreement () =
  let res =
    Nocommit_runner.run
      (cfg (sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 4 ])) ]))
  in
  Alcotest.(check bool) "two decided values" true
    (List.length (Run_result.decided_values res) >= 2)

let test_piggyback_breaks_agreement () =
  let res =
    Piggy_runner.run
      (cfg (sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 4 ])) ]))
  in
  Alcotest.(check bool) "two decided values" true
    (List.length (Run_result.decided_values res) >= 2)

(* The paper's own algorithm survives the prefix-ordered analogue of the
   piggyback witness: the commit can never outrun the data. *)
let test_paper_survives_the_same_attack () =
  let module R = Engine.Make (Core.Rwwc) in
  let res =
    R.run (cfg (sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 4 ])) ]))
  in
  Spec.Properties.assert_ok ~context:"paper vs piggyback witness"
    (Spec.Properties.uniform_consensus ~bound:2 res)

let test_piggyback_bits_still_accounted () =
  let res = Piggy_runner.run (cfg Schedule.empty) in
  (* 3 data messages of 32 bits + 3 one-bit commits, all in the data step. *)
  Alcotest.(check int) "bits" ((3 * 32) + 3) res.Run_result.data_bits;
  Alcotest.(check int) "no sync-step messages" 0 res.Run_result.sync_msgs

let () =
  Alcotest.run "variants"
    [
      ( "ablations",
        [
          Alcotest.test_case "fault-free-equivalence" `Quick
            test_variants_agree_without_crashes;
          Alcotest.test_case "ascending-round-bound" `Quick
            test_ascending_breaks_round_bound;
          Alcotest.test_case "ascending-termination" `Quick
            test_ascending_breaks_termination_at_f_eq_t;
          Alcotest.test_case "ascending-safety-exhaustive" `Quick
            test_ascending_never_disagrees;
          Alcotest.test_case "no-commit-agreement" `Quick
            test_no_commit_breaks_agreement;
          Alcotest.test_case "piggyback-agreement" `Quick
            test_piggyback_breaks_agreement;
          Alcotest.test_case "paper-survives" `Quick
            test_paper_survives_the_same_attack;
          Alcotest.test_case "piggyback-bits" `Quick
            test_piggyback_bits_still_accounted;
        ] );
    ]
