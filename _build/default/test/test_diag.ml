(* Unit tests for the diag library (stats + table rendering). *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let check_float ?eps name expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %f got %f" name expected got)
    true
    (feq ?eps expected got)

let test_mean () = check_float "mean" 2.5 (Diag.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Diag.Stats.mean []))

let test_summary () =
  let s = Diag.Stats.summarize [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check int) "count" 4 s.Diag.Stats.count;
  check_float "mean" 2.5 s.Diag.Stats.mean;
  check_float "min" 1.0 s.Diag.Stats.min;
  check_float "max" 4.0 s.Diag.Stats.max;
  check_float "p50" 2.5 s.Diag.Stats.p50;
  (* sample stddev of 1..4 is sqrt(5/3) *)
  check_float ~eps:1e-6 "stddev" (sqrt (5.0 /. 3.0)) s.Diag.Stats.stddev

let test_summary_singleton () =
  let s = Diag.Stats.summarize [ 7.0 ] in
  check_float "mean" 7.0 s.Diag.Stats.mean;
  check_float "stddev" 0.0 s.Diag.Stats.stddev;
  check_float "p99" 7.0 s.Diag.Stats.p99

let test_percentile_interpolation () =
  let a = [| 10.0; 20.0; 30.0 |] in
  check_float "q0" 10.0 (Diag.Stats.percentile a 0.0);
  check_float "q1" 30.0 (Diag.Stats.percentile a 1.0);
  check_float "q0.5" 20.0 (Diag.Stats.percentile a 0.5);
  check_float "q0.25" 15.0 (Diag.Stats.percentile a 0.25)

let test_histogram () =
  let h = Diag.Stats.histogram ~bins:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let (_, _, c0) = h.(0) and (_, _, c1) = h.(1) in
  Alcotest.(check int) "total" 4 (c0 + c1);
  Alcotest.(check int) "first bin" 2 c0

let test_histogram_constant_sample () =
  let h = Diag.Stats.histogram ~bins:3 [ 5.0; 5.0; 5.0 ] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 3 total

let test_table_roundtrip () =
  let t = Diag.Table.create ~title:"demo" ~header:[ "k"; "v" ] () in
  Diag.Table.add_row t [ "a"; "1" ];
  Diag.Table.add_rows t [ [ "b"; "2" ]; [ "c"; "3" ] ];
  Alcotest.(check int) "rows" 3 (Diag.Table.row_count t);
  Alcotest.(check string) "cell" "2" (Diag.Table.cell t ~row:1 ~col:1);
  Alcotest.(check (option string)) "title" (Some "demo") (Diag.Table.title t)

let test_table_arity_checked () =
  let t = Diag.Table.create ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: expected 2 cells, got 1") (fun () ->
      Diag.Table.add_row t [ "only" ])

let test_table_render_contains_cells () =
  let t = Diag.Table.create ~header:[ "name"; "rounds" ] () in
  Diag.Table.add_row t [ "rwwc"; "3" ];
  let s = Diag.Table.render t in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %S" needle)
        true
        (Helpers.contains_substring s needle))
    [ "name"; "rounds"; "rwwc"; "3" ]

let test_table_custom_align () =
  let t = Diag.Table.create ~header:[ "a"; "b" ] () in
  Diag.Table.add_row t [ "x"; "yy" ];
  let left = Diag.Table.render ~align:[ Diag.Table.Left; Diag.Table.Left ] t in
  Alcotest.(check bool) "renders" true (String.length left > 0);
  Alcotest.check_raises "arity checked"
    (Invalid_argument "Table.render: align arity mismatch") (fun () ->
      ignore (Diag.Table.render ~align:[ Diag.Table.Left ] t))

let test_markdown_shape () =
  let t = Diag.Table.create ~header:[ "a"; "b" ] () in
  Diag.Table.add_row t [ "x"; "y" ];
  let lines = String.split_on_char '\n' (Diag.Table.render_markdown t) in
  Alcotest.(check string) "header" "| a | b |" (List.nth lines 0);
  Alcotest.(check string) "separator" "| --- | --- |" (List.nth lines 1);
  Alcotest.(check string) "row" "| x | y |" (List.nth lines 2)

let test_csv_quoting () =
  let t = Diag.Table.create ~header:[ "a" ] () in
  Diag.Table.add_row t [ "plain" ];
  Diag.Table.add_row t [ "has,comma" ];
  Diag.Table.add_row t [ "has\"quote" ];
  let lines = String.split_on_char '\n' (Diag.Table.render_csv t) in
  Alcotest.(check string) "plain" "plain" (List.nth lines 1);
  Alcotest.(check string) "comma quoted" "\"has,comma\"" (List.nth lines 2);
  Alcotest.(check string) "quote doubled" "\"has\"\"quote\"" (List.nth lines 3)

let test_formatters () =
  Alcotest.(check string) "int" "42" (Diag.Table.fmt_int 42);
  Alcotest.(check string) "float" "3.14" (Diag.Table.fmt_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1416"
    (Diag.Table.fmt_float ~decimals:4 3.14159);
  Alcotest.(check string) "ratio" "1.50x" (Diag.Table.fmt_ratio 3.0 2.0);
  Alcotest.(check string) "ratio div0" "inf" (Diag.Table.fmt_ratio 3.0 0.0);
  Alcotest.(check string) "bool" "yes" (Diag.Table.fmt_bool true)

let () =
  Alcotest.run "diag"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean-empty" `Quick test_mean_empty;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary-singleton" `Quick test_summary_singleton;
          Alcotest.test_case "percentile" `Quick test_percentile_interpolation;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram-constant" `Quick test_histogram_constant_sample;
        ] );
      ( "table",
        [
          Alcotest.test_case "roundtrip" `Quick test_table_roundtrip;
          Alcotest.test_case "arity" `Quick test_table_arity_checked;
          Alcotest.test_case "render" `Quick test_table_render_contains_cells;
          Alcotest.test_case "custom-align" `Quick test_table_custom_align;
          Alcotest.test_case "markdown" `Quick test_markdown_shape;
          Alcotest.test_case "csv" `Quick test_csv_quoting;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
    ]
