(* Tests for the lower-bound machinery: stepper vs engine cross-validation,
   truncation counterexamples, tightness certificates and valence
   analysis. *)

open Model
open Sync_sim
open Helpers

module S = Lower_bound.Stepper.Make (Core.Rwwc)
module Ex = Lower_bound.Explorer.Make (Core.Rwwc)
module Biv = Lower_bound.Bivalency.Make (Core.Rwwc)

(* Drive the stepper with the per-round choices of a complete schedule (one
   crash per round at most) and compare the final statuses with the
   engine's. *)
let stepper_replay ~n ~t ~proposals schedule =
  let crash_in_round r =
    List.find_map
      (fun (pid, (ev : Crash.event)) ->
        if ev.round = r then Some (pid, ev.point) else None)
      (Schedule.bindings schedule)
  in
  let rec go config =
    if S.running config = [] || S.next_round config > t + 2 then config
    else
      let crash =
        match crash_in_round (S.next_round config) with
        | Some (pid, point)
          when List.exists (Pid.equal pid) (S.running config) ->
          Some (pid, point)
        | Some _ | None -> None
      in
      go (S.step config ~crash)
  in
  S.statuses (go (S.initial ~n ~t ~proposals))

let test_stepper_matches_engine_exhaustively () =
  let n = 3 and t = 1 in
  let proposals = [| 4; 5; 6 |] in
  Seq.iter
    (fun schedule ->
      if Schedule.at_most_one_crash_per_round schedule then begin
        let via_engine =
          (run_rwwc ~n ~t ~schedule ~proposals ()).Run_result.statuses
        and via_stepper = stepper_replay ~n ~t ~proposals schedule in
        Alcotest.(check bool)
          (Printf.sprintf "statuses agree on %s" (Schedule.to_string schedule))
          true
          (via_engine = via_stepper)
      end)
    (Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n ~max_f:1
       ~max_round:2)

let test_stepper_guards () =
  let c = S.initial ~n:3 ~t:0 ~proposals:[| 1; 2; 3 |] in
  Alcotest.(check bool) "budget enforced" true
    (try
       ignore (S.step c ~crash:(Some (Pid.of_int 1, Crash.Before_send)));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "round counter" 1 (S.next_round c);
  let c' = S.step c ~crash:None in
  Alcotest.(check int) "advances" 2 (S.next_round c');
  Alcotest.(check (list int)) "all decided after round 1" [ 1 ]
    (S.decided_values c')

let test_stepper_fingerprint_distinguishes () =
  let a = S.initial ~n:3 ~t:1 ~proposals:[| 1; 2; 3 |]
  and b = S.initial ~n:3 ~t:1 ~proposals:[| 9; 2; 3 |] in
  Alcotest.(check bool) "different proposals differ" false
    (S.fingerprint a = S.fingerprint b);
  Alcotest.(check bool) "same config same print" true
    (S.fingerprint a = S.fingerprint (S.initial ~n:3 ~t:1 ~proposals:[| 1; 2; 3 |]))

(* --- Truncation ----------------------------------------------------------- *)

module Trunc1 =
  Lower_bound.Truncated.Make
    (Core.Rwwc)
    (struct
      let decide_by = 1
    end)

module Trunc_runner = Engine.Make (Trunc1)

let test_truncated_forces_decisions () =
  let res =
    Trunc_runner.run
      (Engine.config ~n:4 ~t:2
         ~schedule:
           (Schedule.of_list
              [ (Pid.of_int 1, Crash.make ~round:1 Crash.Before_send) ])
         ~proposals:[| 1; 2; 3; 4 |] ())
  in
  (* Everyone alive decided at round 1 (their own estimates: nothing was
     received), violating agreement. *)
  Alcotest.(check int) "one round" 1 res.Run_result.rounds_executed;
  Alcotest.(check bool) "agreement violated" false
    (Spec.Properties.all_ok [ Spec.Properties.uniform_agreement res ])

let test_truncated_preserves_normal_decisions () =
  (* Without crashes the truncation never fires: same outcome as native. *)
  let res =
    Trunc_runner.run
      (Engine.config ~n:4 ~t:2 ~proposals:[| 7; 2; 3; 4 |] ())
  in
  Alcotest.(check (list int)) "decides 7" [ 7 ] (Run_result.decided_values res)

(* --- Explorer ------------------------------------------------------------- *)

let test_tightness_all_f () =
  let n = 7 in
  for f = 0 to n - 2 do
    let cert = Ex.tightness ~n ~f ~proposals:(Engine.distinct_proposals n) in
    Alcotest.(check int)
      (Printf.sprintf "f=%d forces round f+1" f)
      (f + 1) cert.Lower_bound.Explorer.max_decision_round
  done

let test_truncation_violation_found () =
  let n = 5 in
  for decide_by = 1 to 3 do
    match
      Ex.truncation_violation ~n ~decide_by
        ~proposals:(Engine.distinct_proposals n)
    with
    | None ->
      Alcotest.fail
        (Printf.sprintf "no violation found for decide_by=%d" decide_by)
    | Some w ->
      (* The witness schedule must be within the claimed adversary power. *)
      Alcotest.(check bool) "f <= decide_by" true
        (Schedule.f w.Lower_bound.Explorer.schedule <= decide_by);
      Alcotest.(check bool) "crashes within rounds 1..decide_by" true
        (Schedule.max_crash_round w.Lower_bound.Explorer.schedule <= decide_by);
      (* And the run must genuinely violate uniform agreement or validity. *)
      Alcotest.(check bool) "violates" false
        (Spec.Properties.all_ok
           [
             Spec.Properties.uniform_agreement w.Lower_bound.Explorer.result;
             Spec.Properties.validity w.Lower_bound.Explorer.result;
           ])
  done

let test_zero_round_case () =
  Alcotest.(check bool) "distinct proposals" true
    (Ex.zero_round_impossible ~n:3 ~proposals:[| 1; 2; 3 |]);
  Alcotest.(check bool) "identical proposals" false
    (Ex.zero_round_impossible ~n:3 ~proposals:[| 5; 5; 5 |])

(* --- Bivalency ------------------------------------------------------------ *)

let test_initial_bivalent_binary () =
  let r = Biv.analyze ~n:3 ~t:1 ~proposals:[| 0; 1; 1 |] () in
  (match r.Lower_bound.Bivalency.initial_valence with
  | Lower_bound.Bivalency.Bivalent vs ->
    Alcotest.(check (list int)) "both reachable" [ 0; 1 ] vs
  | Lower_bound.Bivalency.Univalent v ->
    Alcotest.fail (Printf.sprintf "unexpectedly univalent(%d)" v));
  Alcotest.(check bool) "no decision in bivalent configs" false
    r.Lower_bound.Bivalency.bivalent_with_decision

let test_univalent_when_no_budget () =
  (* t = 0: the adversary cannot crash anyone, so p1 always imposes 0. *)
  let r = Biv.analyze ~n:3 ~t:0 ~proposals:[| 0; 1; 1 |] () in
  match r.Lower_bound.Bivalency.initial_valence with
  | Lower_bound.Bivalency.Univalent 0 -> ()
  | v ->
    Alcotest.fail
      (Format.asprintf "expected univalent(0), got %a"
         Lower_bound.Bivalency.pp_valence v)

let test_univalent_on_unanimity () =
  (* Validity forces unanimity to be univalent regardless of crashes. *)
  let r = Biv.analyze ~n:3 ~t:1 ~proposals:[| 4; 4; 4 |] () in
  match r.Lower_bound.Bivalency.initial_valence with
  | Lower_bound.Bivalency.Univalent 4 -> ()
  | v ->
    Alcotest.fail
      (Format.asprintf "expected univalent(4), got %a"
         Lower_bound.Bivalency.pp_valence v)

let test_bivalent_depth_grows_with_t () =
  (* Bivalence can be retained one round per spendable crash beyond the one
     needed to steer the outcome: depth t-1 for the Figure 1 algorithm. *)
  let depth ~n ~t =
    (Biv.analyze ~n ~t
       ~proposals:(Array.init n (fun i -> if i = 0 then 0 else 1))
       ())
      .Lower_bound.Bivalency.max_bivalent_depth
  in
  Alcotest.(check int) "n=3 t=1" 0 (depth ~n:3 ~t:1);
  Alcotest.(check int) "n=4 t=2" 1 (depth ~n:4 ~t:2);
  Alcotest.(check int) "n=5 t=3" 2 (depth ~n:5 ~t:3)

let test_reachable_values_mid_run () =
  (* After p1 crashes delivering only to p2, both 0 (if p2 survives) and 1
     (if p2 is also crashed) remain reachable with budget 2. *)
  let c = S.initial ~n:4 ~t:2 ~proposals:[| 0; 1; 1; 1 |] in
  let c' =
    S.step c
      ~crash:(Some (Pid.of_int 1, Crash.During_data (Pid.set_of_ints [ 2 ])))
  in
  Alcotest.(check (list int)) "bivalent after round 1" [ 0; 1 ]
    (Biv.reachable_values c')

let () =
  Alcotest.run "lower_bound"
    [
      ( "stepper",
        [
          Alcotest.test_case "matches-engine" `Quick test_stepper_matches_engine_exhaustively;
          Alcotest.test_case "guards" `Quick test_stepper_guards;
          Alcotest.test_case "fingerprint" `Quick test_stepper_fingerprint_distinguishes;
        ] );
      ( "truncated",
        [
          Alcotest.test_case "forces" `Quick test_truncated_forces_decisions;
          Alcotest.test_case "transparent" `Quick test_truncated_preserves_normal_decisions;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "tightness" `Quick test_tightness_all_f;
          Alcotest.test_case "violations" `Quick test_truncation_violation_found;
          Alcotest.test_case "zero-round" `Quick test_zero_round_case;
        ] );
      ( "bivalency",
        [
          Alcotest.test_case "initial-bivalent" `Quick test_initial_bivalent_binary;
          Alcotest.test_case "no-budget" `Quick test_univalent_when_no_budget;
          Alcotest.test_case "unanimity" `Quick test_univalent_on_unanimity;
          Alcotest.test_case "depth" `Quick test_bivalent_depth_grows_with_t;
          Alcotest.test_case "mid-run" `Quick test_reachable_values_mid_run;
        ] );
    ]
