(* Unit and property tests for the prng library. *)

let test_splitmix_deterministic () =
  let a = Prng.Splitmix.create ~seed:42L and b = Prng.Splitmix.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Splitmix.next a) (Prng.Splitmix.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Prng.Splitmix.create ~seed:1L and b = Prng.Splitmix.create ~seed:2L in
  Alcotest.(check bool) "different seeds differ" false
    (Prng.Splitmix.next a = Prng.Splitmix.next b)

let test_splitmix_copy_replays () =
  let a = Prng.Splitmix.create ~seed:7L in
  ignore (Prng.Splitmix.next a);
  let b = Prng.Splitmix.copy a in
  Alcotest.(check int64) "copy replays" (Prng.Splitmix.next a) (Prng.Splitmix.next b)

let test_split_independence () =
  (* The child stream must not equal the parent's continuation. *)
  let parent = Prng.Splitmix.create ~seed:99L in
  let child = Prng.Splitmix.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Splitmix.next parent = Prng.Splitmix.next child then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 2)

let test_pcg_deterministic () =
  let a = Prng.Pcg.create ~seed:42L () and b = Prng.Pcg.create ~seed:42L () in
  for _ = 1 to 100 do
    Alcotest.(check int32) "same stream" (Prng.Pcg.next a) (Prng.Pcg.next b)
  done

let test_pcg_next64 () =
  let a = Prng.Pcg.create ~seed:5L () and b = Prng.Pcg.create ~seed:5L () in
  (* next64 is the concatenation of two 32-bit outputs. *)
  let hi = Int64.of_int32 (Prng.Pcg.next b) in
  let lo = Int64.of_int32 (Prng.Pcg.next b) in
  let expected = Int64.(logor (shift_left hi 32) (logand lo 0xFFFFFFFFL)) in
  Alcotest.(check int64) "concatenation" expected (Prng.Pcg.next64 a)

let test_pcg_streams_differ () =
  let a = Prng.Pcg.create ~stream:1L ~seed:42L ()
  and b = Prng.Pcg.create ~stream:2L ~seed:42L () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Pcg.next a = Prng.Pcg.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 2)

let test_int_bounds () =
  let g = Prng.Rng.of_int 1 in
  for _ = 1 to 10_000 do
    let v = Prng.Rng.int g 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_in_bounds () =
  let g = Prng.Rng.of_int 2 in
  for _ = 1 to 10_000 do
    let v = Prng.Rng.int_in g (-3) 5 in
    Alcotest.(check bool) "in [-3,5]" true (v >= -3 && v <= 5)
  done

let test_int_rejects_bad_bound () =
  let g = Prng.Rng.of_int 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prng.Rng.int g 0))

let test_int_uniformity () =
  (* Chi-squared-ish sanity: each of 8 buckets within 3 sigma of mean. *)
  let g = Prng.Rng.of_int 4 in
  let buckets = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Prng.Rng.int g 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  let mean = float_of_int trials /. 8.0 in
  let sigma = sqrt (mean *. (1.0 -. (1.0 /. 8.0))) in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. mean) in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 4 sigma (count %d)" i c)
        true
        (dev < 4.0 *. sigma))
    buckets

let test_float_bounds () =
  let g = Prng.Rng.of_int 5 in
  for _ = 1 to 10_000 do
    let v = Prng.Rng.float g 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_bool_balance () =
  let g = Prng.Rng.of_int 6 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.Rng.bool g then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 4600 && !trues < 5400)

let test_permutation_is_permutation () =
  let g = Prng.Rng.of_int 7 in
  for n = 1 to 20 do
    let p = Prng.Rng.permutation g n in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "is a permutation" (Array.init n Fun.id) sorted
  done

let test_shuffle_preserves_multiset () =
  let g = Prng.Rng.of_int 8 in
  let a = [| 1; 2; 2; 3; 5; 8 |] in
  let b = Array.copy a in
  Prng.Rng.shuffle_in_place g b;
  Array.sort compare b;
  let a' = Array.copy a in
  Array.sort compare a';
  Alcotest.(check (array int)) "same elements" a' b

let test_choose_member () =
  let g = Prng.Rng.of_int 9 in
  let xs = [ 10; 20; 30 ] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (List.mem (Prng.Rng.choose g xs) xs)
  done

let test_subset_is_subsequence () =
  let g = Prng.Rng.of_int 10 in
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  for _ = 1 to 200 do
    let s = Prng.Rng.subset g xs in
    let rec is_subseq s xs =
      match (s, xs) with
      | [], _ -> true
      | _, [] -> false
      | a :: s', b :: xs' -> if a = b then is_subseq s' xs' else is_subseq s xs'
    in
    Alcotest.(check bool) "subsequence" true (is_subseq s xs)
  done

let test_sample_without_replacement () =
  let g = Prng.Rng.of_int 11 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  for k = 0 to 10 do
    let s = Prng.Rng.sample_without_replacement g k xs in
    Alcotest.(check int) "size" (min k 8) (List.length s);
    Alcotest.(check int) "distinct" (List.length s)
      (List.length (List.sort_uniq compare s));
    List.iter (fun x -> Alcotest.(check bool) "member" true (List.mem x xs)) s
  done

let test_geometric_support () =
  let g = Prng.Rng.of_int 12 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "non-negative" true (Prng.Rng.geometric g ~p:0.3 >= 0)
  done;
  Alcotest.(check int) "p=1 is 0" 0 (Prng.Rng.geometric g ~p:1.0)

let test_exponential_positive_mean () =
  let g = Prng.Rng.of_int 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.Rng.exponential g ~mean:2.0 in
    Alcotest.(check bool) "positive" true (v > 0.0);
    sum := !sum +. v
  done;
  let m = !sum /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean close to 2 (got %f)" m) true
    (m > 1.9 && m < 2.1)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed-sensitive" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "copy-replays" `Quick test_splitmix_copy_replays;
          Alcotest.test_case "split-independent" `Quick test_split_independence;
        ] );
      ( "pcg",
        [
          Alcotest.test_case "deterministic" `Quick test_pcg_deterministic;
          Alcotest.test_case "streams-differ" `Quick test_pcg_streams_differ;
          Alcotest.test_case "next64" `Quick test_pcg_next64;
        ] );
      ( "rng",
        [
          Alcotest.test_case "int-bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in-bounds" `Quick test_int_in_bounds;
          Alcotest.test_case "int-bad-bound" `Quick test_int_rejects_bad_bound;
          Alcotest.test_case "int-uniform" `Quick test_int_uniformity;
          Alcotest.test_case "float-bounds" `Quick test_float_bounds;
          Alcotest.test_case "bool-balance" `Quick test_bool_balance;
          Alcotest.test_case "permutation" `Quick test_permutation_is_permutation;
          Alcotest.test_case "shuffle-multiset" `Quick test_shuffle_preserves_multiset;
          Alcotest.test_case "choose-member" `Quick test_choose_member;
          Alcotest.test_case "subset-subseq" `Quick test_subset_is_subsequence;
          Alcotest.test_case "sample-wor" `Quick test_sample_without_replacement;
          Alcotest.test_case "geometric" `Quick test_geometric_support;
          Alcotest.test_case "exponential" `Quick test_exponential_positive_mean;
        ] );
    ]
