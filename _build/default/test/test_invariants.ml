(* Tests for the Figure 1 trace invariants: they hold on every recorded run
   of the paper's algorithm (sampled and exhaustively for small systems),
   and individual checks actually fire on doctored traces. *)

open Model
open Sync_sim
open Helpers

let run ~n ~t ~schedule =
  run_rwwc ~record_trace:true ~n ~t ~schedule
    ~proposals:(Engine.distinct_proposals n) ()

let test_invariants_hold_exhaustively () =
  let n = 4 and t = 2 in
  Seq.iter
    (fun schedule ->
      let res = run ~n ~t ~schedule in
      Spec.Properties.assert_ok
        ~context:(Model.Schedule.to_string schedule)
        (Spec.Figure1_invariants.all res))
    (Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n ~max_f:2
       ~max_round:3)

let prop_invariants_random =
  qtest ~count:400 "figure1 invariants on random runs"
    (scenario_gen ~model:Model_kind.Extended ())
    (fun s ->
      let res =
        run_rwwc ~record_trace:true ~n:s.n ~t:s.t ~schedule:s.schedule
          ~proposals:s.proposals ()
      in
      match Spec.Properties.failures (Spec.Figure1_invariants.all res) with
      | [] -> true
      | c :: _ ->
        QCheck2.Test.fail_reportf "%s on %s"
          (Format.asprintf "%a" Spec.Properties.pp_check c)
          (scenario_print s))

let test_requires_trace () =
  let res =
    run_rwwc ~n:3 ~t:1 ~schedule:Model.Schedule.empty ~proposals:[| 1; 2; 3 |] ()
  in
  Alcotest.(check bool) "raises without trace" true
    (try
       ignore (Spec.Figure1_invariants.all res);
       false
     with Invalid_argument _ -> true)

(* Doctored traces: flip something in a legitimate result and watch the
   right check fail.  The result record is plain data, so we can rebuild it
   with a perturbed trace. *)
let with_trace res trace = { res with Run_result.trace }

let base () = run ~n:4 ~t:2 ~schedule:Model.Schedule.empty

let test_detects_foreign_sender () =
  let res = base () in
  let doctored =
    res.Run_result.trace
    @ [
        Trace.Round_begin 2;
        Trace.Data_sent
          { round = 2; from = Pid.of_int 3; dest = Pid.of_int 4; payload = "1" };
      ]
  in
  let c = Spec.Figure1_invariants.coordinator_only_sender (with_trace res doctored) in
  Alcotest.(check bool) "caught" false c.Spec.Properties.ok

let test_detects_commit_overtaking () =
  let res = base () in
  (* Move the first commit before the first data send. *)
  let commits, rest =
    List.partition
      (function Trace.Sync_sent _ -> true | _ -> false)
      res.Run_result.trace
  in
  let doctored =
    match rest with
    | Trace.Round_begin r :: tail -> (Trace.Round_begin r :: commits) @ tail
    | _ -> Alcotest.fail "unexpected trace shape"
  in
  let c = Spec.Figure1_invariants.data_before_commit (with_trace res doctored) in
  Alcotest.(check bool) "caught" false c.Spec.Properties.ok

let test_detects_bad_prefix () =
  let res = base () in
  (* Reverse the commit order: p2 first instead of p_n first. *)
  let doctored =
    List.map
      (function
        | Trace.Sync_sent { round; from; dest } ->
          Trace.Sync_sent
            {
              round;
              from;
              dest = Pid.of_int (res.Run_result.n + 2 - Pid.to_int dest);
            }
        | ev -> ev)
      res.Run_result.trace
  in
  let c = Spec.Figure1_invariants.commit_prefix_shape (with_trace res doctored) in
  Alcotest.(check bool) "caught" false c.Spec.Properties.ok

let test_detects_unlocked_value () =
  let res = base () in
  let doctored =
    res.Run_result.trace
    @ [
        Trace.Round_begin 2;
        Trace.Data_sent
          { round = 2; from = Pid.of_int 2; dest = Pid.of_int 3; payload = "99" };
      ]
  in
  let c = Spec.Figure1_invariants.value_locking (with_trace res doctored) in
  Alcotest.(check bool) "caught" false c.Spec.Properties.ok

let test_detects_commitless_decision () =
  let res = base () in
  let doctored =
    List.filter
      (function
        | Trace.Sync_sent { dest; _ } -> Pid.to_int dest <> 3
        | _ -> true)
      res.Run_result.trace
  in
  let c = Spec.Figure1_invariants.decision_needs_commit (with_trace res doctored) in
  Alcotest.(check bool) "caught" false c.Spec.Properties.ok

let () =
  Alcotest.run "invariants"
    [
      ( "figure1",
        [
          Alcotest.test_case "exhaustive" `Quick test_invariants_hold_exhaustively;
          prop_invariants_random;
          Alcotest.test_case "requires-trace" `Quick test_requires_trace;
          Alcotest.test_case "foreign-sender" `Quick test_detects_foreign_sender;
          Alcotest.test_case "commit-overtaking" `Quick test_detects_commit_overtaking;
          Alcotest.test_case "bad-prefix" `Quick test_detects_bad_prefix;
          Alcotest.test_case "unlocked-value" `Quick test_detects_unlocked_value;
          Alcotest.test_case "commitless-decision" `Quick test_detects_commitless_decision;
        ] );
    ]
