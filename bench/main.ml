(* Bench harness.

   Phase 1 regenerates every evaluation table of the paper (the experiment
   registry — EXP-F1 .. EXP-CL); phase 2 runs one Bechamel micro-benchmark
   per table, timing the computational kernel behind it, plus a few engine
   throughput benches.  Absolute times are machine-local; the reproduced
   shapes live in the phase-1 tables. *)

open Bechamel
open Toolkit
open Model
open Sync_sim

(* --- Phase 2 kernels: one per experiment table --------------------------- *)

let silent ~n ~f =
  Adversary.Strategies.coordinator_killer ~n ~f ~style:Adversary.Strategies.Silent

let greedy ~n ~f =
  Adversary.Strategies.coordinator_killer ~n ~f ~style:Adversary.Strategies.Greedy

let rwwc_run ~n ~t ~schedule () =
  ignore
    (Harness.Runners.Rwwc_runner.run
       (Engine.config ~schedule ~n ~t ~proposals:(Harness.Workloads.distinct n) ()))

let bench_f1 () =
  ignore
    (Harness.Runners.Rwwc_runner.run
       (Engine.config ~record_trace:true ~schedule:(silent ~n:8 ~f:3) ~n:8 ~t:6
          ~proposals:(Harness.Workloads.distinct 8) ()))

let bench_t1 () = rwwc_run ~n:32 ~t:30 ~schedule:(silent ~n:32 ~f:6) ()

let bench_t2_best () = rwwc_run ~n:32 ~t:30 ~schedule:Schedule.empty ()

let bench_t2_worst () = rwwc_run ~n:32 ~t:30 ~schedule:(greedy ~n:32 ~f:8) ()

let bench_s22 () =
  ignore
    (Harness.Runners.Es_runner.run
       (Engine.config ~schedule:(silent ~n:16 ~f:4) ~n:16 ~t:14
          ~proposals:(Harness.Workloads.distinct 16) ()))

module Ex = Lower_bound.Explorer.Make (Core.Rwwc)

let bench_lb () =
  ignore
    (Ex.truncation_violation ~n:4 ~decide_by:2
       ~proposals:(Harness.Workloads.distinct 4))

module Biv = Lower_bound.Bivalency.Make (Core.Rwwc)

let bench_biv () =
  ignore (Biv.analyze ~n:4 ~t:2 ~proposals:(Harness.Workloads.binary ~n:4 ~zeros:1) ())

let bench_sim () =
  let n = 8 and t = 6 in
  let schedule = Harness.Runners.Compiled.translate_schedule ~n (silent ~n ~f:2) in
  ignore
    (Harness.Runners.Compiled_runner.run
       (Engine.config ~max_rounds:(n * (t + 2)) ~schedule ~n ~t
          ~proposals:(Harness.Workloads.distinct n) ()))

module Paced = Fastfd.Paced.Make (struct
  let d = 1.0
  let big_d = 100.0
end)

module Paced_runner = Timed_sim.Timed_engine.Make (Paced)

let bench_ffd () =
  let n = 8 in
  let crashes =
    [
      { Timed_sim.Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 0 };
      {
        Timed_sim.Timed_engine.victim = Pid.of_int 2;
        at = Paced.slot_time 2;
        batch_prefix = 0;
      };
    ]
  in
  let crash_times =
    List.map (fun (c : Timed_sim.Timed_engine.crash_spec) -> (c.victim, c.at)) crashes
  in
  ignore
    (Paced_runner.run
       (Timed_sim.Timed_engine.config
          ~latency:(Timed_sim.Timed_engine.Fixed 100.0)
          ~crashes
          ~fd_plan:(Fastfd.Device.plan ~n ~d:1.0 ~crashes:crash_times ())
          ~n ~t:(n - 1) ~proposals:(Harness.Workloads.distinct n) ()))

module Mr99_runner = Timed_sim.Timed_engine.Make (Async_cons.Mr99)

let bench_mr99 () =
  let n = 5 in
  let rng = Prng.Rng.of_int 13 in
  ignore
    (Mr99_runner.run
       (Timed_sim.Timed_engine.config
          ~latency:(Timed_sim.Timed_engine.Exponential { mean = 1.0; cap = 8.0 })
          ~fd_plan:
            (Async_cons.Fd_s.plan ~rng ~n ~crashes:[] ~trusted:(Pid.of_int 1)
               ~gst:50.0 ~detect_lag:2.0 ~noise_events:2)
          ~deadline:100000.0 ~n ~t:2
          ~proposals:(Harness.Workloads.distinct n) ()))

let bench_cl () =
  ignore (Snapshot.Chandy_lamport.run (Snapshot.Chandy_lamport.config ~n:5 ()))

module Abl_probe = Sync_sim.Engine.Make (Core.Rwwc_variants.Data_decide)

let bench_abl () =
  (* The ablation kernel: one broken-variant run over a witness schedule. *)
  ignore
    (Abl_probe.run
       (Engine.config
          ~schedule:
            (Schedule.of_list
               [
                 ( Pid.of_int 1,
                   Model.Crash.make ~round:1
                     (Model.Crash.During_data (Pid.set_of_ints [ 4 ])) );
               ])
          ~n:4 ~t:2 ~proposals:(Harness.Workloads.distinct 4) ()))

module Nu_runner = Sync_sim.Engine.Make (Baselines.Nonuniform_early)

let bench_uni () =
  ignore
    (Nu_runner.run
       (Engine.config ~schedule:(silent ~n:8 ~f:2) ~n:8 ~t:3
          ~proposals:(Harness.Workloads.distinct 8) ()))

module Lan_rwwc =
  Lan.Realization.Make
    (Core.Rwwc)
    (struct
      let big_d = 100.0
      let delta = 2.0
    end)

module Lan_runner = Timed_sim.Timed_engine.Make (Lan_rwwc)

let bench_lan () =
  let n = 8 in
  let schedule = silent ~n ~f:2 in
  ignore
    (Lan_runner.run
       (Timed_sim.Timed_engine.config
          ~latency:(Timed_sim.Timed_engine.Uniform { lo = 1.0; hi = 100.0 })
          ~crashes:
            (Lan.Realization.translate_rwwc_schedule ~n ~big_d:100.0 ~delta:2.0
               schedule)
          ~n ~t:(n - 2) ~proposals:(Harness.Workloads.distinct n) ()))

(* Chaos: the retransmitting transport under a seeded network storm — the
   kernel behind EXP-CHAOS.  Measures the full masked run including fault
   draws, retries and ack bookkeeping. *)

module Masked_rwwc =
  Lan.Masked.Make
    (Core.Rwwc)
    (struct
      let big_d = 10.0
      let delta = 1.0
      let retry_budget = 2
    end)

module Masked_runner = Timed_sim.Timed_engine.Make (Masked_rwwc)

let bench_chaos () =
  let n = 6 in
  ignore
    (Masked_runner.run
       (Timed_sim.Timed_engine.config
          ~latency:(Timed_sim.Timed_engine.Uniform { lo = 0.5; hi = 5.0 })
          ~faults:
            (Adversary.Net_faults.network_storm ~drop:0.1 ~duplicate:0.05
               ~jitter:0.2 ~jitter_spread:2.5 ~seed:11L ())
          ~seed:11L ~n ~t:(n - 2) ~proposals:(Harness.Workloads.distinct n) ()))

(* Engine throughput references. *)

let bench_eff () =
  ignore
    (Harness.Runners.Flood_runner.run
       (Engine.config ~schedule:(silent ~n:32 ~f:2) ~n:32 ~t:30
          ~proposals:(Harness.Workloads.distinct 32) ()))

let bench_engine_large () = rwwc_run ~n:64 ~t:62 ~schedule:(silent ~n:64 ~f:16) ()

(* Observer-layer overhead: the identical engine workload under the null
   instrument and under real sinks.  "obs/rwwc-null-n32" must sit within
   noise of "table-T1/rwwc-silent-n32-f6" (the same run through the default
   config) — the null path allocates no events. *)

let obs_cfg instrument =
  Engine.config ~instrument ~schedule:(silent ~n:32 ~f:6) ~n:32 ~t:30
    ~proposals:(Harness.Workloads.distinct 32) ()

let bench_obs_null () =
  ignore (Harness.Runners.Rwwc_runner.run (obs_cfg Obs.Instrument.null))

let bench_obs_metrics () =
  let m = Obs.Metrics.create () in
  ignore (Harness.Runners.Rwwc_runner.run (obs_cfg (Obs.Metrics.instrument m)))

let bench_obs_online () =
  let guard =
    Obs.Online_invariants.create ~n:32 ~t:30
      ~proposals:(Harness.Workloads.distinct 32) ()
  in
  ignore
    (Harness.Runners.Rwwc_runner.run
       (obs_cfg (Obs.Online_invariants.instrument guard)))

let bench_obs_trace () =
  let ts = Obs.Trace_sink.create () in
  ignore (Harness.Runners.Rwwc_runner.run (obs_cfg (Obs.Trace_sink.instrument ts)))

(* Model-check sweep kernels — the hot loop behind `sync-agreement check`
   (EXP-MC): a reused-runner verdict fold over the full n=4 extended-model
   schedule space, sequential vs sharded across 4 domains. *)

let mc_space () =
  Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n:4 ~max_f:2
    ~max_round:3

let mc_fold ~shards ~shard =
  let run =
    Harness.Runners.Rwwc_runner.runner
      (Engine.config ~n:4 ~t:2 ~proposals:(Harness.Workloads.distinct 4) ())
  in
  Seq.fold_left
    (fun acc schedule ->
      let res = run schedule in
      acc
      && Spec.Properties.all_ok
           (Spec.Properties.uniform_consensus
              ~bound:(Harness.Runners.f_actual res + 1)
              res))
    true
    (Adversary.Enumerate.shard ~shards ~shard (mc_space ()))

let bench_mc_seq () = assert (mc_fold ~shards:1 ~shard:0)

let bench_mc_domains () =
  assert (List.for_all Fun.id (Parallel.Pool.shards ~domains:4 mc_fold))

(* The allocation-lean fast path: the runner (and its scratch) is created
   once, outside the timed region, so this measures the steady-state
   per-run cost next to "table-T1/rwwc-silent-n32-f6" (fresh config+scratch
   every run). *)

let t1_runner =
  Harness.Runners.Rwwc_runner.runner
    (Engine.config ~n:32 ~t:30 ~proposals:(Harness.Workloads.distinct 32) ())

let t1_schedule = silent ~n:32 ~f:6

let bench_reused_runner () = ignore (t1_runner t1_schedule)

let bench_floodset () =
  ignore
    (Harness.Runners.Flood_runner.run
       (Engine.config ~n:16 ~t:8 ~proposals:(Harness.Workloads.distinct 16) ()))

(* Minimize kernels — the machinery behind `sync-agreement shrink` and
   EXP-DIFF.  The failing schedule and the algorithm record are built once,
   outside the staged thunk, so the measurement is the greedy descent
   (schedule re-runs per candidate) and one oracle pass respectively. *)

let shrink_algo =
  match Minimize.Algo.find "data-decide" with
  | Ok a -> a
  | Error why -> failwith why

let shrink_input =
  match
    Minimize.Algo.first_violation shrink_algo ~n:4 ~t:2 ~max_f:2 ~max_round:3
  with
  | Some (schedule, check) -> (schedule, check.Spec.Properties.name)
  | None -> failwith "bench: data-decide has no violation at n=4"

let bench_shrink () =
  let schedule, property = shrink_input in
  let still_fails s =
    let res = shrink_algo.Minimize.Algo.run ~n:4 ~t:2 s in
    List.exists
      (fun c -> c.Spec.Properties.name = property && not c.Spec.Properties.ok)
      (Minimize.Algo.checks shrink_algo ~t:2 res)
  in
  ignore
    (Minimize.Shrink.run ~reductions:Adversary.Enumerate.reductions ~still_fails
       schedule)

let oracle_schedule = silent ~n:4 ~f:1

let bench_oracle () =
  assert (Minimize.Oracle.agrees ~n:4 ~t:2 oracle_schedule)

(* The live wire protocol without the sockets: a full n=5 f=2 loopback
   round trip — encode, CRC, incremental decode for every frame — is the
   per-run overhead the live runtime adds over the abstract engine. *)
let live_script = Live.Script.default ~n:5 ~f:2

let bench_live_loopback () =
  ignore (Live.Loopback.Rwwc.run ~n:5 ~t:2 ~script:live_script ())

let bench_heap () =
  let h = Timed_sim.Heap.create () in
  for i = 0 to 999 do
    Timed_sim.Heap.add h ~time:(float_of_int ((i * 7919) mod 997)) ~rank:0 i
  done;
  let rec drain () = match Timed_sim.Heap.pop h with Some _ -> drain () | None -> () in
  drain ()

(* Flat-engine scale kernels: the reused runner (scratch allocated once,
   outside the timed region) on coordinator-killer schedules at sizes the
   list-era engine could not complete in reasonable time.  The n=1024 f=256
   kernel executes a 257-round run over a megabyte-scale arena per call. *)

let flat_kernel ~n ~f =
  let runner =
    Harness.Runners.Rwwc_runner.runner
      (Engine.config ~n ~t:(n - 2) ~proposals:(Harness.Workloads.distinct n) ())
  in
  let schedule = silent ~n ~f in
  fun () -> ignore (runner schedule)

let bench_flat_n256 = flat_kernel ~n:256 ~f:64
let bench_flat_n1024 = flat_kernel ~n:1024 ~f:256

(* Dist kernels: the serialization spine of the coordinator/worker path.
   The protocol kernel is a full [Result] message round trip — JSON encode,
   frame, CRC, incremental decode, JSON parse — the per-shard wire cost a
   distributed sweep pays over an in-process one; the checkpoint kernel is
   one save/load cycle of a 24-shard checkpoint through the fsync'd
   atomic-rename path, the durability cost of acknowledging one shard. *)

let dist_result_msg =
  let violation =
    {
      Dist.Protocol.schedule = silent ~n:4 ~f:1;
      property = "uniform-agreement";
      detail = "bench fixture";
    }
  in
  Dist.Protocol.Result
    {
      Dist.Protocol.shard = 7;
      classes = 263;
      violations = [ violation; violation; violation ];
      violations_total = 3;
      worker = "bench";
    }

let bench_dist_protocol () =
  let json = Dist.Protocol.msg_to_json dist_result_msg in
  let body = Obs.Json.to_string json in
  let bytes =
    Live.Frame.encode
      (Live.Frame.Data { instance = 0; round = 0; payload = body })
  in
  let decoder = Live.Frame.decoder () in
  Live.Frame.feed_string decoder bytes;
  match Live.Frame.pop decoder with
  | `Frame (Live.Frame.Data { payload; _ }) -> (
    match Obs.Json.of_string payload with
    | Error why -> failwith why
    | Ok j -> (
      match Dist.Protocol.msg_of_json j with
      | Ok _ -> ()
      | Error why -> failwith why))
  | _ -> failwith "bench_dist_protocol: frame did not round-trip"

let dist_checkpoint_file =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "sync-agreement-bench-ckpt-%d.json" (Unix.getpid ()))

let dist_checkpoint =
  let shard_result shard =
    {
      Dist.Protocol.shard;
      classes = 252;
      violations = [];
      violations_total = 0;
      worker = "bench";
    }
  in
  {
    Dist.Checkpoint.job =
      {
        Dist.Protocol.algo = "rwwc";
        n = 5;
        max_f = 3;
        max_round = 3;
        shards = 24;
        symmetry = true;
        heartbeat_every = 0.25;
      };
    results = List.init 24 shard_result;
  }

let bench_dist_checkpoint () =
  Dist.Checkpoint.save ~file:dist_checkpoint_file dist_checkpoint;
  match Dist.Checkpoint.load dist_checkpoint_file with
  | Ok _ -> ()
  | Error why -> failwith why

(* Serve kernels — the consensus-as-a-service path (EXP-SERVE).  The
   decisions/sec kernel runs a full 1000-instance n=5 storm through the
   loopback mesh: every frame is encoded, CRC'd and incrementally decoded
   exactly as on a real socket, with per-destination batching on.  The p99
   kernel is the same storm with a mid-storm coordinator kill, so the
   latency tail includes instances that had to ride out an expired round;
   both assert the per-instance judge verdicts so a perf regression can
   never hide a correctness one. *)

let serve_storm ~instances ~window ~kill () =
  let r =
    Serve.Loopback.Rwwc.run
      {
        Serve.Loopback.Rwwc.n = 5;
        t = 2;
        instances;
        window;
        big_d = 0.25;
        batch = true;
        kill;
        max_rounds = None;
        proposals = (fun i node -> (i * 5) + node);
      }
  in
  if not r.Serve.Report.ok then failwith "serve storm: judge failures"

let bench_serve_dps () = serve_storm ~instances:1000 ~window:64 ~kill:None ()

let bench_serve_p99 () =
  serve_storm ~instances:500 ~window:32
    ~kill:(Some { Serve.Report.node = 1; after_frames = 157 })
    ()

(* The wire hot path in isolation: a pre-encoded 2000-frame stream (Data
   with a 16-byte payload + Ctl, interleaved across 1000 instance ids of
   every varint width) drained through the allocating [pop] and the
   zero-copy [pop_view] — the difference is what the view read path buys
   each event-loop wakeup. *)

let decode_wire =
  String.concat ""
    (List.concat_map
       (fun i ->
         let instance = i * 1049 mod (Live.Frame.max_instance + 1) in
         [
           Live.Frame.encode
             (Live.Frame.Data
                { instance; round = 1; payload = String.make 16 'x' });
           Live.Frame.encode (Live.Frame.Ctl { instance; round = 2 });
         ])
       (List.init 1000 Fun.id))

let bench_frame_decode () =
  let d = Live.Frame.decoder () in
  Live.Frame.feed_string d decode_wire;
  let rec drain n =
    match Live.Frame.pop d with
    | `Frame _ -> drain (n + 1)
    | `Need_more -> n
    | `Corrupt why -> failwith why
  in
  if drain 0 <> 2000 then failwith "bench_frame_decode: lost frames"

let bench_frame_decode_views () =
  let d = Live.Frame.decoder () in
  Live.Frame.feed_string d decode_wire;
  let rec drain n =
    match Live.Frame.pop_view d with
    | `View _ -> drain (n + 1)
    | `Need_more -> n
    | `Corrupt why -> failwith why
  in
  if drain 0 <> 2000 then failwith "bench_frame_decode_views: lost frames"

let kernels =
  [
    ("table-F1/rwwc-traced-n8-f3", bench_f1);
    ("table-T1/rwwc-silent-n32-f6", bench_t1);
    ("table-T2a/rwwc-best-n32", bench_t2_best);
    ("table-T2b/rwwc-greedy-n32-f8", bench_t2_worst);
    ("table-S22/early-stopping-n16-f4", bench_s22);
    ("table-LB/truncation-witness-n4", bench_lb);
    ("table-BIV/valence-n4-t2", bench_biv);
    ("table-SIM/compiled-rwwc-n8-f2", bench_sim);
    ("table-FFD/paced-n8-f2", bench_ffd);
    ("table-MR99/async-run-n5", bench_mr99);
    ("table-CL/snapshot-n5", bench_cl);
    ("table-ABL/broken-variant-n4", bench_abl);
    ("table-UNI/nonuniform-n8-f2", bench_uni);
    ("table-LAN/rwwc-on-lan-n8-f2", bench_lan);
    ("table-CHAOS/masked-storm-n6", bench_chaos);
    ("table-EFF/floodset-n32", bench_eff);
    ("engine/rwwc-n64-f16", bench_engine_large);
    ("engine/rwwc-reused-runner-n32", bench_reused_runner);
    ("engine/rwwc-flat-n256", bench_flat_n256);
    ("engine/rwwc-flat-n1024-f256", bench_flat_n1024);
    ("mc/sweep-n4-seq", bench_mc_seq);
    ("mc/sweep-n4-domains", bench_mc_domains);
    ("obs/rwwc-null-n32", bench_obs_null);
    ("obs/rwwc-metrics-n32", bench_obs_metrics);
    ("obs/rwwc-online-n32", bench_obs_online);
    ("obs/rwwc-trace-sink-n32", bench_obs_trace);
    ("engine/floodset-n16-t8", bench_floodset);
    ("minimize/shrink-data-decide-n4", bench_shrink);
    ("minimize/oracle-rwwc-n4", bench_oracle);
    ("engine/heap-1k-push-pop", bench_heap);
    ("live/rwwc-n5-loopback", bench_live_loopback);
    ("dist/result-msg-roundtrip", bench_dist_protocol);
    ("dist/checkpoint-save-load", bench_dist_checkpoint);
    ("frame/decode-throughput", bench_frame_decode);
    ("frame/decode-throughput-views", bench_frame_decode_views);
    ("serve/decisions-per-sec-n5-i1000", bench_serve_dps);
    ("serve/p99-latency-under-storm", bench_serve_p99);
  ]

(* Statistical quality floor: every reported estimate must come from at
   least [min_samples] samples and fit with r^2 >= [min_r2], or the kernel
   is re-measured with a doubled time quota (up to [max_attempts]).  The
   warmup calls before the first measurement keep one-time costs — arena
   growth, lazy initialization, cold caches — out of the sampled region;
   they, plus the floor, are what lifted the shrink/oracle kernels from
   r^2 ~ 0.7 to >= 0.8. *)
let min_r2 = 0.8

let min_samples = 10
let max_attempts = 3
let warmup_iters = 3

let measure_kernel (name, fn) =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  for _ = 1 to warmup_iters do
    fn ()
  done;
  let rec attempt ~quota ~tries =
    let cfg =
      Benchmark.cfg ~limit:3000 ~quota:(Time.second quota) ~kde:None
        ~stabilize:true ()
    in
    let results =
      Benchmark.all cfg instances (Test.make ~name (Staged.stage fn))
    in
    let samples =
      Hashtbl.fold
        (fun _ (b : Benchmark.t) acc -> min acc b.Benchmark.stats.samples)
        results max_int
    in
    let analyzed = Analyze.all ols Instance.monotonic_clock results in
    let row = ref (name, None, None) in
    Hashtbl.iter
      (fun name ols_result ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> Some e
          | Some [] | None -> None
        in
        row := (name, ns, Analyze.OLS.r_square ols_result))
      analyzed;
    let _, _, r2 = !row in
    let good =
      samples >= min_samples
      && match r2 with Some r -> r >= min_r2 | None -> false
    in
    if good || tries >= max_attempts then !row
    else attempt ~quota:(2.0 *. quota) ~tries:(tries + 1)
  in
  attempt ~quota:1.0 ~tries:1

let run_benchmarks ~only () =
  let table =
    Diag.Table.create ~title:"Micro-benchmarks (monotonic clock)"
      ~header:[ "benchmark"; "ns/run"; "r^2" ] ()
  in
  let selected =
    match only with
    | None -> kernels
    | Some k -> List.filter (fun (name, _) -> name = k) kernels
  in
  let rows =
    List.map
      (fun kernel ->
        let ((name, ns, r2) as row) = measure_kernel kernel in
        Diag.Table.add_row table
          [
            name;
            (match ns with Some e -> Printf.sprintf "%.0f" e | None -> "-");
            (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-");
          ];
        row)
      selected
  in
  print_string (Diag.Table.render table);
  rows

(* BENCH_RESULTS.json: the machine-readable perf trajectory.  One document
   per bench run, one entry per registered kernel, so successive PRs can be
   diffed without scraping the rendered table. *)
let json_doc rows =
  let opt_float = function Some v -> Obs.Json.Float v | None -> Obs.Json.Null in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "sync-agreement/bench/v1");
      ("clock", Obs.Json.String "monotonic");
      ( "results",
        Obs.Json.List
          (List.map
             (fun (name, ns, r2) ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String name);
                   ("ns_per_run", opt_float ns);
                   ("r_squared", opt_float r2);
                 ])
             rows) );
    ]

let () =
  let json_file = ref None in
  let only = ref None in
  let once = ref false in
  let no_tables = ref false in
  Arg.parse
    [
      ( "--json",
        Arg.String (fun f -> json_file := Some f),
        "FILE  also write the micro-benchmark estimates as JSON to FILE" );
      ( "--kernel",
        Arg.String (fun k -> only := Some k),
        "NAME  measure only the named kernel" );
      ( "--once",
        Arg.Set once,
        "  execute each selected kernel exactly once, untimed (smoke mode)" );
      ( "--no-tables",
        Arg.Set no_tables,
        "  skip the phase-1 reproduction tables" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--json FILE] [--kernel NAME] [--once] [--no-tables]";
  (match !only with
  | Some k when not (List.mem_assoc k kernels) ->
    Printf.eprintf "unknown kernel %S (known: %s)\n" k
      (String.concat ", " (List.map fst kernels));
    exit 2
  | Some _ | None -> ());
  if not !no_tables then begin
    print_endline
      "=== Reproduction tables (one experiment per paper artefact) ===\n";
    List.iter (Harness.Experiment.print ~markdown:false) Harness.Registry.all
  end;
  if !once then begin
    (* CI smoke mode: prove the kernels run, skip the statistics. *)
    List.iter
      (fun (name, fn) ->
        match !only with
        | Some k when k <> name -> ()
        | Some _ | None ->
          fn ();
          Printf.printf "ran %s\n%!" name)
      kernels;
    exit 0
  end;
  print_endline "=== Micro-benchmarks ===\n";
  let rows = run_benchmarks ~only:!only () in
  match !json_file with
  | None -> ()
  | Some file ->
    (* Write-to-temp + rename: a reader (or a crashed run) never observes a
       truncated BENCH_RESULTS.json, and the old document survives any
       failure before the rename. *)
    let tmp = file ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Obs.Json.to_string (json_doc rows));
        output_char oc '\n');
    Sys.rename tmp file;
    Printf.printf "wrote %s\n" file
