(* Bench harness.

   Phase 1 regenerates every evaluation table of the paper (the experiment
   registry — EXP-F1 .. EXP-CL); phase 2 runs one Bechamel micro-benchmark
   per table, timing the computational kernel behind it, plus a few engine
   throughput benches.  Absolute times are machine-local; the reproduced
   shapes live in the phase-1 tables. *)

open Bechamel
open Toolkit
open Model
open Sync_sim

(* --- Phase 2 kernels: one per experiment table --------------------------- *)

let silent ~n ~f =
  Adversary.Strategies.coordinator_killer ~n ~f ~style:Adversary.Strategies.Silent

let greedy ~n ~f =
  Adversary.Strategies.coordinator_killer ~n ~f ~style:Adversary.Strategies.Greedy

let rwwc_run ~n ~t ~schedule () =
  ignore
    (Harness.Runners.Rwwc_runner.run
       (Engine.config ~schedule ~n ~t ~proposals:(Harness.Workloads.distinct n) ()))

let bench_f1 () =
  ignore
    (Harness.Runners.Rwwc_runner.run
       (Engine.config ~record_trace:true ~schedule:(silent ~n:8 ~f:3) ~n:8 ~t:6
          ~proposals:(Harness.Workloads.distinct 8) ()))

let bench_t1 () = rwwc_run ~n:32 ~t:30 ~schedule:(silent ~n:32 ~f:6) ()

let bench_t2_best () = rwwc_run ~n:32 ~t:30 ~schedule:Schedule.empty ()

let bench_t2_worst () = rwwc_run ~n:32 ~t:30 ~schedule:(greedy ~n:32 ~f:8) ()

let bench_s22 () =
  ignore
    (Harness.Runners.Es_runner.run
       (Engine.config ~schedule:(silent ~n:16 ~f:4) ~n:16 ~t:14
          ~proposals:(Harness.Workloads.distinct 16) ()))

module Ex = Lower_bound.Explorer.Make (Core.Rwwc)

let bench_lb () =
  ignore
    (Ex.truncation_violation ~n:4 ~decide_by:2
       ~proposals:(Harness.Workloads.distinct 4))

module Biv = Lower_bound.Bivalency.Make (Core.Rwwc)

let bench_biv () =
  ignore (Biv.analyze ~n:4 ~t:2 ~proposals:(Harness.Workloads.binary ~n:4 ~zeros:1) ())

let bench_sim () =
  let n = 8 and t = 6 in
  let schedule = Harness.Runners.Compiled.translate_schedule ~n (silent ~n ~f:2) in
  ignore
    (Harness.Runners.Compiled_runner.run
       (Engine.config ~max_rounds:(n * (t + 2)) ~schedule ~n ~t
          ~proposals:(Harness.Workloads.distinct n) ()))

module Paced = Fastfd.Paced.Make (struct
  let d = 1.0
  let big_d = 100.0
end)

module Paced_runner = Timed_sim.Timed_engine.Make (Paced)

let bench_ffd () =
  let n = 8 in
  let crashes =
    [
      { Timed_sim.Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 0 };
      {
        Timed_sim.Timed_engine.victim = Pid.of_int 2;
        at = Paced.slot_time 2;
        batch_prefix = 0;
      };
    ]
  in
  let crash_times =
    List.map (fun (c : Timed_sim.Timed_engine.crash_spec) -> (c.victim, c.at)) crashes
  in
  ignore
    (Paced_runner.run
       (Timed_sim.Timed_engine.config
          ~latency:(Timed_sim.Timed_engine.Fixed 100.0)
          ~crashes
          ~fd_plan:(Fastfd.Device.plan ~n ~d:1.0 ~crashes:crash_times ())
          ~n ~t:(n - 1) ~proposals:(Harness.Workloads.distinct n) ()))

module Mr99_runner = Timed_sim.Timed_engine.Make (Async_cons.Mr99)

let bench_mr99 () =
  let n = 5 in
  let rng = Prng.Rng.of_int 13 in
  ignore
    (Mr99_runner.run
       (Timed_sim.Timed_engine.config
          ~latency:(Timed_sim.Timed_engine.Exponential { mean = 1.0; cap = 8.0 })
          ~fd_plan:
            (Async_cons.Fd_s.plan ~rng ~n ~crashes:[] ~trusted:(Pid.of_int 1)
               ~gst:50.0 ~detect_lag:2.0 ~noise_events:2)
          ~deadline:100000.0 ~n ~t:2
          ~proposals:(Harness.Workloads.distinct n) ()))

let bench_cl () =
  ignore (Snapshot.Chandy_lamport.run (Snapshot.Chandy_lamport.config ~n:5 ()))

module Abl_probe = Sync_sim.Engine.Make (Core.Rwwc_variants.Data_decide)

let bench_abl () =
  (* The ablation kernel: one broken-variant run over a witness schedule. *)
  ignore
    (Abl_probe.run
       (Engine.config
          ~schedule:
            (Schedule.of_list
               [
                 ( Pid.of_int 1,
                   Model.Crash.make ~round:1
                     (Model.Crash.During_data (Pid.set_of_ints [ 4 ])) );
               ])
          ~n:4 ~t:2 ~proposals:(Harness.Workloads.distinct 4) ()))

module Nu_runner = Sync_sim.Engine.Make (Baselines.Nonuniform_early)

let bench_uni () =
  ignore
    (Nu_runner.run
       (Engine.config ~schedule:(silent ~n:8 ~f:2) ~n:8 ~t:3
          ~proposals:(Harness.Workloads.distinct 8) ()))

module Lan_rwwc =
  Lan.Realization.Make
    (Core.Rwwc)
    (struct
      let big_d = 100.0
      let delta = 2.0
    end)

module Lan_runner = Timed_sim.Timed_engine.Make (Lan_rwwc)

let bench_lan () =
  let n = 8 in
  let schedule = silent ~n ~f:2 in
  ignore
    (Lan_runner.run
       (Timed_sim.Timed_engine.config
          ~latency:(Timed_sim.Timed_engine.Uniform { lo = 1.0; hi = 100.0 })
          ~crashes:
            (Lan.Realization.translate_rwwc_schedule ~n ~big_d:100.0 ~delta:2.0
               schedule)
          ~n ~t:(n - 2) ~proposals:(Harness.Workloads.distinct n) ()))

(* Chaos: the retransmitting transport under a seeded network storm — the
   kernel behind EXP-CHAOS.  Measures the full masked run including fault
   draws, retries and ack bookkeeping. *)

module Masked_rwwc =
  Lan.Masked.Make
    (Core.Rwwc)
    (struct
      let big_d = 10.0
      let delta = 1.0
      let retry_budget = 2
    end)

module Masked_runner = Timed_sim.Timed_engine.Make (Masked_rwwc)

let bench_chaos () =
  let n = 6 in
  ignore
    (Masked_runner.run
       (Timed_sim.Timed_engine.config
          ~latency:(Timed_sim.Timed_engine.Uniform { lo = 0.5; hi = 5.0 })
          ~faults:
            (Adversary.Net_faults.network_storm ~drop:0.1 ~duplicate:0.05
               ~jitter:0.2 ~jitter_spread:2.5 ~seed:11L ())
          ~seed:11L ~n ~t:(n - 2) ~proposals:(Harness.Workloads.distinct n) ()))

(* Engine throughput references. *)

let bench_eff () =
  ignore
    (Harness.Runners.Flood_runner.run
       (Engine.config ~schedule:(silent ~n:32 ~f:2) ~n:32 ~t:30
          ~proposals:(Harness.Workloads.distinct 32) ()))

let bench_engine_large () = rwwc_run ~n:64 ~t:62 ~schedule:(silent ~n:64 ~f:16) ()

(* Observer-layer overhead: the identical engine workload under the null
   instrument and under real sinks.  "obs/rwwc-null-n32" must sit within
   noise of "table-T1/rwwc-silent-n32-f6" (the same run through the default
   config) — the null path allocates no events. *)

let obs_cfg instrument =
  Engine.config ~instrument ~schedule:(silent ~n:32 ~f:6) ~n:32 ~t:30
    ~proposals:(Harness.Workloads.distinct 32) ()

let bench_obs_null () =
  ignore (Harness.Runners.Rwwc_runner.run (obs_cfg Obs.Instrument.null))

let bench_obs_metrics () =
  let m = Obs.Metrics.create () in
  ignore (Harness.Runners.Rwwc_runner.run (obs_cfg (Obs.Metrics.instrument m)))

let bench_obs_online () =
  let guard =
    Obs.Online_invariants.create ~n:32 ~t:30
      ~proposals:(Harness.Workloads.distinct 32) ()
  in
  ignore
    (Harness.Runners.Rwwc_runner.run
       (obs_cfg (Obs.Online_invariants.instrument guard)))

let bench_obs_trace () =
  let ts = Obs.Trace_sink.create () in
  ignore (Harness.Runners.Rwwc_runner.run (obs_cfg (Obs.Trace_sink.instrument ts)))

(* Model-check sweep kernels — the hot loop behind `sync-agreement check`
   (EXP-MC): a reused-runner verdict fold over the full n=4 extended-model
   schedule space, sequential vs sharded across 4 domains. *)

let mc_space () =
  Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n:4 ~max_f:2
    ~max_round:3

let mc_fold ~shards ~shard =
  let run =
    Harness.Runners.Rwwc_runner.runner
      (Engine.config ~n:4 ~t:2 ~proposals:(Harness.Workloads.distinct 4) ())
  in
  Seq.fold_left
    (fun acc schedule ->
      let res = run schedule in
      acc
      && Spec.Properties.all_ok
           (Spec.Properties.uniform_consensus
              ~bound:(Harness.Runners.f_actual res + 1)
              res))
    true
    (Adversary.Enumerate.shard ~shards ~shard (mc_space ()))

let bench_mc_seq () = assert (mc_fold ~shards:1 ~shard:0)

let bench_mc_domains () =
  assert (List.for_all Fun.id (Parallel.Pool.shards ~domains:4 mc_fold))

(* The allocation-lean fast path: the runner (and its scratch) is created
   once, outside the timed region, so this measures the steady-state
   per-run cost next to "table-T1/rwwc-silent-n32-f6" (fresh config+scratch
   every run). *)

let t1_runner =
  Harness.Runners.Rwwc_runner.runner
    (Engine.config ~n:32 ~t:30 ~proposals:(Harness.Workloads.distinct 32) ())

let t1_schedule = silent ~n:32 ~f:6

let bench_reused_runner () = ignore (t1_runner t1_schedule)

let bench_floodset () =
  ignore
    (Harness.Runners.Flood_runner.run
       (Engine.config ~n:16 ~t:8 ~proposals:(Harness.Workloads.distinct 16) ()))

(* Minimize kernels — the machinery behind `sync-agreement shrink` and
   EXP-DIFF.  The failing schedule and the algorithm record are built once,
   outside the staged thunk, so the measurement is the greedy descent
   (schedule re-runs per candidate) and one oracle pass respectively. *)

let shrink_algo =
  match Minimize.Algo.find "data-decide" with
  | Ok a -> a
  | Error why -> failwith why

let shrink_input =
  match
    Minimize.Algo.first_violation shrink_algo ~n:4 ~t:2 ~max_f:2 ~max_round:3
  with
  | Some (schedule, check) -> (schedule, check.Spec.Properties.name)
  | None -> failwith "bench: data-decide has no violation at n=4"

let bench_shrink () =
  let schedule, property = shrink_input in
  let still_fails s =
    let res = shrink_algo.Minimize.Algo.run ~n:4 ~t:2 s in
    List.exists
      (fun c -> c.Spec.Properties.name = property && not c.Spec.Properties.ok)
      (Minimize.Algo.checks shrink_algo ~t:2 res)
  in
  ignore
    (Minimize.Shrink.run ~reductions:Adversary.Enumerate.reductions ~still_fails
       schedule)

let oracle_schedule = silent ~n:4 ~f:1

let bench_oracle () =
  assert (Minimize.Oracle.agrees ~n:4 ~t:2 oracle_schedule)

(* The live wire protocol without the sockets: a full n=5 f=2 loopback
   round trip — encode, CRC, incremental decode for every frame — is the
   per-run overhead the live runtime adds over the abstract engine. *)
let live_script = Live.Script.default ~n:5 ~f:2

let bench_live_loopback () =
  ignore (Live.Loopback.Rwwc.run ~n:5 ~t:2 ~script:live_script ())

let bench_heap () =
  let h = Timed_sim.Heap.create () in
  for i = 0 to 999 do
    Timed_sim.Heap.add h ~time:(float_of_int ((i * 7919) mod 997)) ~rank:0 i
  done;
  let rec drain () = match Timed_sim.Heap.pop h with Some _ -> drain () | None -> () in
  drain ()

let tests =
  [
    Test.make ~name:"table-F1/rwwc-traced-n8-f3" (Staged.stage bench_f1);
    Test.make ~name:"table-T1/rwwc-silent-n32-f6" (Staged.stage bench_t1);
    Test.make ~name:"table-T2a/rwwc-best-n32" (Staged.stage bench_t2_best);
    Test.make ~name:"table-T2b/rwwc-greedy-n32-f8" (Staged.stage bench_t2_worst);
    Test.make ~name:"table-S22/early-stopping-n16-f4" (Staged.stage bench_s22);
    Test.make ~name:"table-LB/truncation-witness-n4" (Staged.stage bench_lb);
    Test.make ~name:"table-BIV/valence-n4-t2" (Staged.stage bench_biv);
    Test.make ~name:"table-SIM/compiled-rwwc-n8-f2" (Staged.stage bench_sim);
    Test.make ~name:"table-FFD/paced-n8-f2" (Staged.stage bench_ffd);
    Test.make ~name:"table-MR99/async-run-n5" (Staged.stage bench_mr99);
    Test.make ~name:"table-CL/snapshot-n5" (Staged.stage bench_cl);
    Test.make ~name:"table-ABL/broken-variant-n4" (Staged.stage bench_abl);
    Test.make ~name:"table-UNI/nonuniform-n8-f2" (Staged.stage bench_uni);
    Test.make ~name:"table-LAN/rwwc-on-lan-n8-f2" (Staged.stage bench_lan);
    Test.make ~name:"table-CHAOS/masked-storm-n6" (Staged.stage bench_chaos);
    Test.make ~name:"table-EFF/floodset-n32" (Staged.stage bench_eff);
    Test.make ~name:"engine/rwwc-n64-f16" (Staged.stage bench_engine_large);
    Test.make ~name:"engine/rwwc-reused-runner-n32" (Staged.stage bench_reused_runner);
    Test.make ~name:"mc/sweep-n4-seq" (Staged.stage bench_mc_seq);
    Test.make ~name:"mc/sweep-n4-domains" (Staged.stage bench_mc_domains);
    Test.make ~name:"obs/rwwc-null-n32" (Staged.stage bench_obs_null);
    Test.make ~name:"obs/rwwc-metrics-n32" (Staged.stage bench_obs_metrics);
    Test.make ~name:"obs/rwwc-online-n32" (Staged.stage bench_obs_online);
    Test.make ~name:"obs/rwwc-trace-sink-n32" (Staged.stage bench_obs_trace);
    Test.make ~name:"engine/floodset-n16-t8" (Staged.stage bench_floodset);
    Test.make ~name:"minimize/shrink-data-decide-n4" (Staged.stage bench_shrink);
    Test.make ~name:"minimize/oracle-rwwc-n4" (Staged.stage bench_oracle);
    Test.make ~name:"engine/heap-1k-push-pop" (Staged.stage bench_heap);
    Test.make ~name:"live/rwwc-n5-loopback" (Staged.stage bench_live_loopback);
  ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:true ()
  in
  let table =
    Diag.Table.create ~title:"Micro-benchmarks (monotonic clock)"
      ~header:[ "benchmark"; "ns/run"; "r^2" ] ()
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Some e
            | Some [] | None -> None
          in
          let r2 = Analyze.OLS.r_square ols_result in
          rows := (name, ns, r2) :: !rows;
          Diag.Table.add_row table
            [
              name;
              (match ns with Some e -> Printf.sprintf "%.0f" e | None -> "-");
              (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-");
            ])
        analyzed)
    tests;
  print_string (Diag.Table.render table);
  List.rev !rows

(* BENCH_RESULTS.json: the machine-readable perf trajectory.  One document
   per bench run, one entry per registered kernel, so successive PRs can be
   diffed without scraping the rendered table. *)
let json_doc rows =
  let opt_float = function Some v -> Obs.Json.Float v | None -> Obs.Json.Null in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "sync-agreement/bench/v1");
      ("clock", Obs.Json.String "monotonic");
      ( "results",
        Obs.Json.List
          (List.map
             (fun (name, ns, r2) ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String name);
                   ("ns_per_run", opt_float ns);
                   ("r_squared", opt_float r2);
                 ])
             rows) );
    ]

let () =
  let json_file = ref None in
  Arg.parse
    [
      ( "--json",
        Arg.String (fun f -> json_file := Some f),
        "FILE  also write the micro-benchmark estimates as JSON to FILE" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--json FILE]";
  print_endline
    "=== Reproduction tables (one experiment per paper artefact) ===\n";
  List.iter (Harness.Experiment.print ~markdown:false) Harness.Registry.all;
  print_endline "=== Micro-benchmarks ===\n";
  let rows = run_benchmarks () in
  match !json_file with
  | None -> ()
  | Some file ->
    (* Write-to-temp + rename: a reader (or a crashed run) never observes a
       truncated BENCH_RESULTS.json, and the old document survives any
       failure before the rename. *)
    let tmp = file ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Obs.Json.to_string (json_doc rows));
        output_char oc '\n');
    Sys.rename tmp file;
    Printf.printf "wrote %s\n" file
