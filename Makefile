# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench check shrink-smoke live-smoke dist-smoke serve-smoke serve-soak serve-recover experiments examples clean

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe -- --json BENCH_RESULTS.json

check:
	dune exec bin/main.exe -- check --algo rwwc -n 4 --max-f 2
	dune exec bin/main.exe -- check --algo rwwc -n 4 --max-f 2 --no-symmetry

# Differential-fuzz smoke: shrink the known broken-variant witness to a
# replayable artifact, then run bounded random schedules + recorded storms
# through the conformance oracle (auto-shrinks on failure).
shrink-smoke:
	dune exec bin/main.exe -- shrink --algo data-decide -n 4 --repro repro-data-decide.json
	dune exec bin/main.exe -- shrink --replay repro-data-decide.json
	dune exec bin/main.exe -- fuzz --runs 40 --repro repro-fuzz.json

# Live-runtime smoke: the deterministic loopback wire, then a real-socket
# fleet with scripted mid-round process kills; both must pass the judge.
live-smoke:
	dune exec bin/main.exe -- live --n 5 --f 2 --transport loopback --dir _live/loopback
	dune exec bin/main.exe -- live --n 4 --f 1 --dir _live/sockets
	dune exec bin/main.exe -- live --n 5 --f 2 --dir _live/acceptance

# Distributed-checker smoke: a coordinator and two forked workers over a
# unix socket, one worker killed mid-sweep by script (the lease re-grants
# and the sweep still finds every class), then a checkpointed n=5 sweep
# whose completed checkpoint resumes without re-executing anything.
dist-smoke:
	dune exec bin/main.exe -- check -a rwwc -n 4 --max-f 2 \
	  --serve unix:/tmp/sync-agreement-dist-smoke.sock --spawn 2 --shards 16 \
	  --kill-one-after 40 --lease-timeout 1
	rm -f /tmp/sync-agreement-dist-smoke.ckpt.json
	dune exec bin/main.exe -- check -a rwwc -n 5 --max-f 3 \
	  --serve unix:/tmp/sync-agreement-dist-smoke.sock --spawn 2 --shards 24 \
	  --checkpoint /tmp/sync-agreement-dist-smoke.ckpt.json --lease-timeout 1
	dune exec bin/main.exe -- check -a rwwc -n 5 --max-f 3 \
	  --serve unix:/tmp/sync-agreement-dist-smoke.sock --shards 24 \
	  --checkpoint /tmp/sync-agreement-dist-smoke.ckpt.json
	rm -f /tmp/sync-agreement-dist-smoke.ckpt.json

# Consensus-as-a-service smoke: a 1000-instance loopback storm that must
# clear the decisions/sec floor, then a real TCP fleet with a scripted
# mid-storm node kill, then the same unix fleet on the poll(2) readiness
# backend; every instance is judged against the abstract engine and any
# failure exits nonzero.
serve-smoke:
	dune exec bin/main.exe -- serve --instances 1000 --min-dps 10000
	dune exec bin/main.exe -- serve --transport tcp --port-base 7930 \
	  --instances 200 --window 32 --round-d 0.15 \
	  --kill-node 1 --kill-after-frame 57
	dune exec bin/main.exe -- serve --transport unix --instances 200 \
	  --backend poll

# Sustained-load soak: 20 seconds of windowed storms through a unix
# fleet on the poll backend, reporting time-bucketed latency percentiles
# and failing on any disagreement or a sub-floor decisions/sec rate.
serve-soak:
	dune exec bin/main.exe -- serve --transport unix -n 5 --window 32 \
	  --backend poll --soak 20 --bucket 5 --min-dps 200

# Crash-recovery contract: a SIGKILLed engine is respawned, replays its
# fsync'd decision WAL, catches up over the mesh, and the judged storm
# stays clean on both readiness backends; a sub-big_d chaos cut is
# delay, not failure; and a kill-storm soak holds the decisions/sec
# floor across the recovery dips.
serve-recover:
	dune exec bin/main.exe -- serve --transport unix --instances 200 \
	  --respawn --kill-node 1 --kill-after-frame 57
	dune exec bin/main.exe -- serve --transport unix --instances 120 \
	  --backend poll --respawn --kill-node 1 --kill-after-frame 157
	dune exec bin/main.exe -- serve --transport unix --instances 100 \
	  --chaos-link 1:2 --chaos-cuts 3 --chaos-seed 11
	dune exec bin/main.exe -- serve --transport unix -n 3 --window 32 \
	  --soak 10 --bucket 2 --respawn --kill-every 3 --min-dps 200
	dune exec bin/main.exe -- experiments --id RECOVER

experiments:
	dune exec bin/main.exe -- experiments

examples:
	dune exec examples/quickstart.exe
	dune exec examples/crash_storm.exe
	dune exec examples/model_showdown.exe
	dune exec examples/bridge_async.exe
	dune exec examples/lower_bound_tour.exe
	dune exec examples/snapshot_demo.exe

clean:
	dune clean
