# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench check experiments examples clean

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe -- --json BENCH_RESULTS.json

check:
	dune exec bin/main.exe -- check --algo rwwc -n 4 --max-f 2
	dune exec bin/main.exe -- check --algo rwwc -n 4 --max-f 2 --no-symmetry

experiments:
	dune exec bin/main.exe -- experiments

examples:
	dune exec examples/quickstart.exe
	dune exec examples/crash_storm.exe
	dune exec examples/model_showdown.exe
	dune exec examples/bridge_async.exe
	dune exec examples/lower_bound_tour.exe
	dune exec examples/snapshot_demo.exe

clean:
	dune clean
