(* Semantics tests for the synchronous round engine, using a probe algorithm
   that decides with an encoding of exactly what it received in round 1:
   decision = data_mask + 1000 * sync_mask, where bit (i-1) of a mask is set
   iff a message from p_i arrived. *)

open Model
open Sync_sim

module Probe = struct
  type msg = Ping

  type state = { me : int; n : int; mask_data : int; mask_sync : int }

  let name = "probe"
  let model = Model_kind.Extended
  let decision_mode = `Halt
  let msg_bits ~value_bits:_ Ping = 4
  let pp_msg ppf Ping = Format.pp_print_string ppf "ping"

  let init ~n ~t:_ ~me ~proposal:_ =
    { me = Pid.to_int me; n; mask_data = 0; mask_sync = 0 }

  let others state =
    List.filter (fun p -> Pid.to_int p <> state.me) (Pid.all ~n:state.n)

  let data_sends state ~round =
    if round = 1 then List.map (fun p -> (p, Ping)) (others state) else []

  let sync_sends state ~round = if round = 1 then others state else []

  let mask pids = List.fold_left (fun m p -> m lor (1 lsl (Pid.to_int p - 1))) 0 pids

  let compute state ~round ~data ~syncs =
    if round = 1 then
      ( {
          state with
          mask_data = mask (List.map fst data);
          mask_sync = mask syncs;
        },
        None )
    else (state, Some (state.mask_data + (1000 * state.mask_sync)))
end

module Runner = Engine.Make (Probe)

let cfg ?(n = 3) ?max_rounds ?(record_trace = false) schedule =
  Engine.config ?max_rounds ~record_trace ~schedule ~n ~t:(n - 1)
    ~proposals:(Engine.distinct_proposals n) ()

let decision res pid =
  match Run_result.status res (Pid.of_int pid) with
  | Run_result.Decided { value; at_round } -> (value, at_round)
  | Run_result.Crashed _ -> Alcotest.fail "unexpectedly crashed"
  | Run_result.Undecided -> Alcotest.fail "unexpectedly undecided"

let crashed_at res pid =
  match Run_result.status res (Pid.of_int pid) with
  | Run_result.Crashed { at_round } -> at_round
  | Run_result.Decided _ | Run_result.Undecided ->
    Alcotest.fail "expected a crash"

let sched l = Schedule.of_list (List.map (fun (p, r, pt) -> (Pid.of_int p, Crash.make ~round:r pt)) l)

let test_no_crash_full_delivery () =
  let res = Runner.run (cfg Schedule.empty) in
  (* p1 hears p2 and p3 on both channels: mask 0b110 = 6. *)
  Alcotest.(check (pair int int)) "p1" (6 + 6000, 2) (decision res 1);
  Alcotest.(check (pair int int)) "p2" (5 + 5000, 2) (decision res 2);
  Alcotest.(check (pair int int)) "p3" (3 + 3000, 2) (decision res 3)

let test_during_data_subset () =
  (* p1 dies mid-data having reached only p2; no sync from p1 at all. *)
  let res = Runner.run (cfg (sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 2 ])) ])) in
  Alcotest.(check (pair int int)) "p2 sees p1 data, not sync" (5 + 4000, 2)
    (decision res 2);
  Alcotest.(check (pair int int)) "p3 misses p1 entirely" (2 + 2000, 2)
    (decision res 3);
  Alcotest.(check int) "p1 crashed in round 1" 1 (crashed_at res 1)

let test_after_data_prefix () =
  (* p1 completes its data step; its sync reaches only the first destination
     of its ordered list [p2; p3]. *)
  let res = Runner.run (cfg (sched [ (1, 1, Crash.After_data 1) ])) in
  Alcotest.(check (pair int int)) "p2 gets p1 sync (prefix)" (5 + 5000, 2)
    (decision res 2);
  Alcotest.(check (pair int int)) "p3 misses p1 sync only" (3 + 2000, 2)
    (decision res 3)

let test_after_data_full_prefix () =
  let res = Runner.run (cfg (sched [ (1, 1, Crash.After_data 2) ])) in
  Alcotest.(check (pair int int)) "p3 gets everything" (3 + 3000, 2)
    (decision res 3)

let test_before_send () =
  let res = Runner.run (cfg (sched [ (1, 1, Crash.Before_send) ])) in
  Alcotest.(check (pair int int)) "p2 misses p1" (4 + 4000, 2) (decision res 2);
  Alcotest.(check (pair int int)) "p3 misses p1" (2 + 2000, 2) (decision res 3)

let test_after_send_no_compute () =
  (* Everything delivered, but p1 must not decide: it dies before its
     computation phase. *)
  let res = Runner.run (cfg (sched [ (1, 1, Crash.After_send) ])) in
  Alcotest.(check int) "p1 crashed round 1" 1 (crashed_at res 1);
  Alcotest.(check (pair int int)) "p2 got everything" (5 + 5000, 2)
    (decision res 2)

let test_crashed_process_stays_silent () =
  (* A probe variant would be needed to watch round-2 sends, but the probe
     sends only in round 1; instead check that a round-2 crash leaves the
     process undecided while others decide. *)
  let res = Runner.run (cfg (sched [ (2, 2, Crash.Before_send) ])) in
  Alcotest.(check int) "p2 crashed round 2" 2 (crashed_at res 2);
  Alcotest.(check (pair int int)) "p1 unaffected" (6 + 6000, 2) (decision res 1)

let test_max_rounds_cutoff () =
  let res = Runner.run (cfg ~max_rounds:1 Schedule.empty) in
  Alcotest.(check bool) "nobody decided" true
    (Run_result.decisions res = []);
  Alcotest.(check int) "one round ran" 1 res.Run_result.rounds_executed;
  Alcotest.(check bool) "termination check fails" false
    (Run_result.all_correct_decided res)

let round_limit_events events =
  List.filter_map
    (function
      | Obs.Event.Round_limit { round; max_rounds; undecided } ->
        Some (round, max_rounds, List.map Pid.to_int undecided)
      | _ -> None)
    events

let test_round_limit_event () =
  (* Hitting max_rounds with running processes emits one structured
     diagnostic naming the undecided set (crashed processes excluded). *)
  let events = ref [] in
  let inst = Obs.Instrument.of_fn (fun e -> events := e :: !events) in
  let res =
    Runner.run
      (Engine.config ~instrument:inst ~max_rounds:1
         ~schedule:(sched [ (1, 1, Crash.Before_send) ])
         ~n:3 ~t:2 ~proposals:(Engine.distinct_proposals 3) ())
  in
  Alcotest.(check bool) "nobody decided" true (Run_result.decisions res = []);
  match round_limit_events !events with
  | [ (round, max_rounds, undecided) ] ->
    Alcotest.(check int) "round reached" 1 round;
    Alcotest.(check int) "configured limit" 1 max_rounds;
    Alcotest.(check (list int)) "undecided = running, not crashed" [ 2; 3 ]
      undecided
  | l -> Alcotest.failf "expected one Round_limit event, got %d" (List.length l)

let test_round_limit_silent_when_all_decide () =
  (* The probe decides in round 2 exactly: a limit of 2 is reached but not
     exceeded, so no diagnostic fires. *)
  let events = ref [] in
  let inst = Obs.Instrument.of_fn (fun e -> events := e :: !events) in
  let res =
    Runner.run
      (Engine.config ~instrument:inst ~max_rounds:2 ~schedule:Schedule.empty
         ~n:3 ~t:2 ~proposals:(Engine.distinct_proposals 3) ())
  in
  Alcotest.(check int) "all decided" 3 (List.length (Run_result.decisions res));
  Alcotest.(check int) "no Round_limit event" 0
    (List.length (round_limit_events !events))

let test_accounting_no_crash () =
  let res = Runner.run (cfg Schedule.empty) in
  Alcotest.(check int) "data msgs" 6 res.Run_result.data_msgs;
  Alcotest.(check int) "data bits (4 each)" 24 res.Run_result.data_bits;
  Alcotest.(check int) "sync msgs" 6 res.Run_result.sync_msgs;
  Alcotest.(check int) "sync bits (1 each)" 6 res.Run_result.sync_bits

let test_accounting_truncated_sends () =
  let res =
    Runner.run (cfg (sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 2 ])) ]))
  in
  (* p1 contributed 1 data message, p2 and p3 two each. *)
  Alcotest.(check int) "data msgs" 5 res.Run_result.data_msgs;
  Alcotest.(check int) "sync msgs" 4 res.Run_result.sync_msgs

let test_sends_to_dead_still_count () =
  (* p2 dies at the start of round 1; p1 and p3 still put their messages to
     it on the wire. *)
  let res = Runner.run (cfg (sched [ (2, 1, Crash.Before_send) ])) in
  Alcotest.(check int) "data msgs" 4 res.Run_result.data_msgs

let test_trace_consistency () =
  let res = Runner.run (cfg ~record_trace:true (sched [ (1, 1, Crash.After_data 1) ])) in
  let trace_decisions = Trace.decisions res.Run_result.trace in
  let result_decisions = Run_result.decisions res in
  Alcotest.(check int) "same decision count"
    (List.length result_decisions) (List.length trace_decisions);
  Alcotest.(check bool) "has round marker" true
    (List.exists
       (function Trace.Round_begin 1 -> true | _ -> false)
       res.Run_result.trace);
  Alcotest.(check bool) "has crash event" true
    (List.exists
       (function Trace.Crashed { pid; _ } -> Pid.to_int pid = 1 | _ -> false)
       res.Run_result.trace)

let test_trace_empty_when_off () =
  let res = Runner.run (cfg Schedule.empty) in
  Alcotest.(check bool) "no trace" true (res.Run_result.trace = [])

module Bad_classic = struct
  include Probe

  let name = "bad-classic"
  let model = Model_kind.Classic
end

module Bad_runner = Engine.Make (Bad_classic)

let test_classic_sync_rejected () =
  Alcotest.(check bool) "raises Model_violation" true
    (try
       ignore
         (Bad_runner.run
            (Engine.config ~n:3 ~t:1 ~proposals:[| 1; 2; 3 |] ()));
       false
     with Engine.Model_violation _ -> true)

module Flood_runner = Engine.Make (Baselines.Flood_set)

let test_classic_schedule_point_rejected () =
  Alcotest.(check bool) "After_data rejected for classic algorithm" true
    (try
       ignore
         (Flood_runner.run
            (Engine.config ~n:3 ~t:1
               ~schedule:(sched [ (1, 1, Crash.After_data 1) ])
               ~proposals:[| 1; 2; 3 |] ()));
       false
     with Engine.Model_violation _ -> true)

let test_config_validation () =
  let check_invalid name f =
    Alcotest.(check bool) name true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  check_invalid "n too small" (fun () ->
      Engine.config ~n:1 ~t:0 ~proposals:[| 1 |] ());
  check_invalid "t out of range" (fun () ->
      Engine.config ~n:3 ~t:3 ~proposals:[| 1; 2; 3 |] ());
  check_invalid "proposal arity" (fun () ->
      Engine.config ~n:3 ~t:1 ~proposals:[| 1 |] ());
  check_invalid "value_bits" (fun () ->
      Engine.config ~value_bits:1 ~n:3 ~t:1 ~proposals:[| 1; 2; 3 |] ())

(* --- the reusable runner (allocation-lean fast path) ----------------------- *)

module Rwwc_run = Engine.Make (Core.Rwwc)

let runner_schedules n =
  Schedule.empty
  :: List.concat_map
       (fun f ->
         [
           Adversary.Strategies.coordinator_killer ~n ~f
             ~style:Adversary.Strategies.Silent;
           Adversary.Strategies.coordinator_killer ~n ~f
             ~style:Adversary.Strategies.Greedy;
         ])
       [ 1; 2; 3 ]

(* One runner, many schedules: each call must equal a fresh [run] with that
   schedule — scratch reuse leaks nothing across runs, in either order. *)
let test_runner_matches_run () =
  let n = 8 in
  let t = n - 2 in
  let proposals = Engine.distinct_proposals n in
  let runner = Rwwc_run.runner (Engine.config ~n ~t ~proposals ()) in
  let check schedule =
    let fresh = Rwwc_run.run (Engine.config ~schedule ~n ~t ~proposals ()) in
    Alcotest.(check bool)
      (Printf.sprintf "identical on %s" (Schedule.to_string schedule))
      true
      (runner schedule = fresh)
  in
  let schedules = runner_schedules n in
  List.iter check schedules;
  (* And again in reverse, so a dirty scratch from a big schedule would be
     caught by a subsequent small one. *)
  List.iter check (List.rev schedules)

let test_runner_validates () =
  let runner =
    Rwwc_run.runner
      (Engine.config ~n:3 ~t:1 ~proposals:(Engine.distinct_proposals 3) ())
  in
  Alcotest.(check bool) "invalid schedule rejected" true
    (try
       ignore
         (runner
            (Schedule.of_list
               [ (Pid.of_int 7, Crash.make ~round:1 Crash.Before_send) ]));
       false
     with Engine.Model_violation _ -> true)

(* The acceptance gauge: the reused runner must allocate measurably less
   per run than the fresh-config path on the same workload. *)
let test_runner_allocates_less () =
  let n = 8 in
  let t = n - 2 in
  let proposals = Engine.distinct_proposals n in
  let schedule =
    Adversary.Strategies.coordinator_killer ~n ~f:3
      ~style:Adversary.Strategies.Greedy
  in
  let runs = 200 in
  let minor_words body =
    let before = Gc.minor_words () in
    for _ = 1 to runs do
      ignore (body ())
    done;
    Gc.minor_words () -. before
  in
  (* Warm both paths so one-time setup is outside the measurement. *)
  let runner = Rwwc_run.runner (Engine.config ~n ~t ~proposals ()) in
  ignore (runner schedule);
  ignore (Rwwc_run.run (Engine.config ~schedule ~n ~t ~proposals ()));
  let fresh =
    minor_words (fun () ->
        Rwwc_run.run (Engine.config ~schedule ~n ~t ~proposals ()))
  in
  let reused = minor_words (fun () -> runner schedule) in
  Alcotest.(check bool)
    (Printf.sprintf "reused (%.0f words) < fresh (%.0f words)" reused fresh)
    true
    (reused < fresh *. 0.8)

let () =
  Alcotest.run "engine"
    [
      ( "delivery",
        [
          Alcotest.test_case "no-crash" `Quick test_no_crash_full_delivery;
          Alcotest.test_case "during-data" `Quick test_during_data_subset;
          Alcotest.test_case "after-data-prefix" `Quick test_after_data_prefix;
          Alcotest.test_case "after-data-full" `Quick test_after_data_full_prefix;
          Alcotest.test_case "before-send" `Quick test_before_send;
          Alcotest.test_case "after-send" `Quick test_after_send_no_compute;
          Alcotest.test_case "late-crash" `Quick test_crashed_process_stays_silent;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "max-rounds" `Quick test_max_rounds_cutoff;
          Alcotest.test_case "round-limit-event" `Quick test_round_limit_event;
          Alcotest.test_case "round-limit-silent" `Quick
            test_round_limit_silent_when_all_decide;
          Alcotest.test_case "trace" `Quick test_trace_consistency;
          Alcotest.test_case "trace-off" `Quick test_trace_empty_when_off;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "no-crash" `Quick test_accounting_no_crash;
          Alcotest.test_case "truncated" `Quick test_accounting_truncated_sends;
          Alcotest.test_case "dead-dest" `Quick test_sends_to_dead_still_count;
        ] );
      ( "validation",
        [
          Alcotest.test_case "classic-sync" `Quick test_classic_sync_rejected;
          Alcotest.test_case "classic-point" `Quick test_classic_schedule_point_rejected;
          Alcotest.test_case "config" `Quick test_config_validation;
        ] );
      ( "runner",
        [
          Alcotest.test_case "matches-run" `Quick test_runner_matches_run;
          Alcotest.test_case "validates" `Quick test_runner_validates;
          Alcotest.test_case "allocates-less" `Quick test_runner_allocates_less;
        ] );
    ]
