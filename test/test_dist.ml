(* The distributed model checker: protocol codec, durable checkpoints,
   local fleets with scripted worker deaths, and coordinator
   SIGKILL-and-resume — the whole fault matrix, against real forked
   processes over real Unix-domain sockets. *)

open Model
module P = Dist.Protocol
module J = Obs.Json

let tmp_name stem =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "dist-test-%s-%d" stem (Unix.getpid ()))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let sched bindings =
  Schedule.of_list
    (List.map
       (fun (pid, round, point) -> (Pid.of_int pid, Crash.make ~round point))
       bindings)

let sample_violation =
  {
    P.schedule = sched [ (1, 1, Crash.Before_send); (2, 2, Crash.After_data 1) ];
    property = "uniform-agreement";
    detail = "distinct decided values: 1, 3";
  }

let sample_result =
  {
    P.shard = 7;
    classes = 123;
    violations = [ sample_violation ];
    violations_total = 9;
    worker = "w42";
  }

(* --- codec ----------------------------------------------------------------- *)

let test_msg_roundtrip () =
  let msgs =
    [
      P.Hello { worker = "w1" };
      P.Job
        {
          P.algo = "rwwc";
          n = 5;
          max_f = 3;
          max_round = 3;
          shards = 24;
          symmetry = true;
          heartbeat_every = 0.25;
        };
      P.Request;
      P.Grant { shard = 3 };
      P.Wait { delay = 0.25 };
      P.Heartbeat { shard = 3; checked = 99 };
      P.Result sample_result;
      P.Ack { shard = 7 };
      P.Done;
    ]
  in
  List.iter
    (fun m ->
      match P.msg_of_json (P.msg_to_json m) with
      | Error why -> Alcotest.fail why
      | Ok m' ->
        Alcotest.(check string)
          (Format.asprintf "%a" P.pp_msg m)
          (J.to_string (P.msg_to_json m))
          (J.to_string (P.msg_to_json m')))
    msgs

let test_msg_rejects_garbage () =
  List.iter
    (fun json ->
      match P.msg_of_json json with
      | Error _ -> ()
      | Ok m ->
        Alcotest.fail (Format.asprintf "garbage decoded as %a" P.pp_msg m))
    [
      J.Obj [];
      J.Obj [ ("type", J.String "warp") ];
      J.Obj [ ("type", J.Int 3) ];
      J.Obj [ ("type", J.String "grant") ];
      (* result with count below the carried violations *)
      J.Obj
        [
          ("type", J.String "result");
          ( "result",
            J.Obj
              [
                ("shard", J.Int 0);
                ("classes", J.Int 1);
                ( "violations",
                  J.List
                    [
                      J.Obj
                        [
                          ("schedule", J.List []);
                          ("property", J.String "p");
                          ("detail", J.String "d");
                        ];
                    ] );
                ("violations_total", J.Int 0);
                ("worker", J.String "w");
              ] );
        ];
    ]

let test_cap_violations () =
  let many =
    List.init 4096 (fun i ->
        {
          sample_violation with
          P.detail = Printf.sprintf "violation %d with some padding text" i;
        })
  in
  let capped = P.cap_violations many in
  Alcotest.(check bool) "capped strictly" true
    (List.length capped < List.length many);
  Alcotest.(check bool) "kept a useful prefix" true (List.length capped > 0);
  let frame_body =
    J.to_string
      (P.msg_to_json
         (P.Result
            {
              sample_result with
              P.violations = capped;
              violations_total = List.length many;
            }))
  in
  Alcotest.(check bool) "capped result fits one frame" true
    (String.length frame_body <= Live.Frame.max_body)

(* --- checkpoints ----------------------------------------------------------- *)

let sample_job =
  {
    P.algo = "rwwc";
    n = 4;
    max_f = 2;
    max_round = 3;
    shards = 8;
    symmetry = true;
    heartbeat_every = 0.25;
  }

let test_checkpoint_roundtrip () =
  let file = tmp_name "ckpt" in
  let c =
    {
      Dist.Checkpoint.job = sample_job;
      results = [ { sample_result with P.shard = 2 } ];
    }
  in
  Dist.Checkpoint.save ~file c;
  Alcotest.(check bool) "no tmp residue" false (Sys.file_exists (file ^ ".tmp"));
  (match Dist.Checkpoint.load file with
  | Error why -> Alcotest.fail why
  | Ok c' ->
    Alcotest.(check bool) "job survives" true
      (P.job_equal c.Dist.Checkpoint.job c'.Dist.Checkpoint.job);
    Alcotest.(check (list int))
      "shards survive" [ 2 ]
      (List.map (fun r -> r.P.shard) c'.Dist.Checkpoint.results));
  Sys.remove file

let test_checkpoint_rejects_truncation () =
  (* The crash window of the save path: whatever prefix of the document a
     torn write could have left behind, load must reject it — never crash,
     never resume from half a checkpoint. *)
  let file = tmp_name "ckpt-trunc" in
  Dist.Checkpoint.save ~file
    { Dist.Checkpoint.job = sample_job; results = [ sample_result ] };
  let full = In_channel.with_open_bin file In_channel.input_all in
  let len = String.length full in
  List.iter
    (fun cut ->
      let oc = open_out_bin file in
      output_string oc (String.sub full 0 cut);
      close_out oc;
      match Dist.Checkpoint.load file with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted a %d/%d-byte prefix" cut len))
    (* len - 2 cuts into the closing brace; len - 1 would only trim the
       trailing newline, which still parses — and should. *)
    [ 0; 1; len / 4; len / 2; len - 2 ];
  Sys.remove file

let test_checkpoint_rejects_out_of_range_and_dup () =
  let file = tmp_name "ckpt-bad" in
  let save_raw results =
    J.save_atomic ~file
      (J.Obj
         [
           ("version", J.Int 1);
           ("job", P.job_to_json sample_job);
           ("results", J.List (List.map P.shard_result_to_json results));
         ])
  in
  save_raw [ { sample_result with P.shard = sample_job.P.shards } ];
  (match Dist.Checkpoint.load file with
  | Error why ->
    Alcotest.(check bool) "names the shard" true (contains ~sub:"out of range" why)
  | Ok _ -> Alcotest.fail "out-of-range shard accepted");
  save_raw [ { sample_result with P.shard = 1 }; { sample_result with P.shard = 1 } ];
  (match Dist.Checkpoint.load file with
  | Error why ->
    Alcotest.(check bool) "names the duplicate" true (contains ~sub:"duplicate" why)
  | Ok _ -> Alcotest.fail "duplicate shard accepted");
  Sys.remove file

let test_repro_save_rejects_truncation () =
  (* Same crash window for the repro artifacts now that Repro.save rides
     the shared durable path. *)
  let file = tmp_name "repro-trunc" in
  let repro =
    {
      Minimize.Repro.n = 4;
      t = 2;
      case =
        Minimize.Repro.Consensus
          {
            algo = "rwwc";
            schedule = sched [ (1, 1, Crash.Before_send) ];
            property = "uniform-agreement";
          };
      steps = 1;
      candidates = 2;
      one_minimal = true;
    }
  in
  Minimize.Repro.save ~file repro;
  Alcotest.(check bool) "no tmp residue" false (Sys.file_exists (file ^ ".tmp"));
  let full = In_channel.with_open_bin file In_channel.input_all in
  let len = String.length full in
  List.iter
    (fun cut ->
      let oc = open_out_bin file in
      output_string oc (String.sub full 0 cut);
      close_out oc;
      match Minimize.Repro.load file with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted a %d/%d-byte prefix" cut len))
    [ 0; len / 3; len - 2 ];
  Sys.remove file

(* --- fleets ---------------------------------------------------------------- *)

let canonical_classes ~n ~max_f ~max_round =
  Adversary.Enumerate.count
    (Adversary.Canonical.schedules
       (Adversary.Canonical.rotating_coordinator ~n)
       ~n ~max_f ~max_round)

let cleanup files = List.iter (fun f -> if Sys.file_exists f then Sys.remove f) files

let test_fleet_matches_local () =
  let sock = tmp_name "fleet.sock" in
  cleanup [ sock ];
  let job = { sample_job with P.shards = 8 } in
  match
    Dist.Fleet.run_local ~lease_timeout:2.0 ~workers:2
      ~addr:(Unix.ADDR_UNIX sock) job
  with
  | Error why -> Alcotest.fail why
  | Ok o ->
    let expected = canonical_classes ~n:4 ~max_f:2 ~max_round:3 in
    Alcotest.(check int) "classes" expected o.Dist.Fleet.report.Dist.Coordinator.classes;
    Alcotest.(check int) "violations" 0
      o.Dist.Fleet.report.Dist.Coordinator.violations_total;
    Alcotest.(check int) "all shards executed" job.P.shards
      (List.length o.Dist.Fleet.report.Dist.Coordinator.executed);
    Alcotest.(check int) "no failures" 0 o.Dist.Fleet.worker_failures

let test_fleet_broken_algo_reports_violations () =
  (* The broken ablation must come back with the same violating classes the
     in-process sweep finds — the distributed path changes where the work
     runs, never the verdicts. *)
  let sock = tmp_name "fleet-dd.sock" in
  cleanup [ sock ];
  let job = { sample_job with P.algo = "data-decide"; shards = 8 } in
  let expected_violations =
    match Minimize.Algo.find "data-decide" with
    | Error why -> Alcotest.fail why
    | Ok algo ->
      Seq.fold_left
        (fun acc s ->
          match Minimize.Algo.violation algo ~n:4 ~t:2 s with
          | Some _ -> acc + 1
          | None -> acc)
        0
        (Adversary.Canonical.schedules
           (Adversary.Canonical.rotating_coordinator ~n:4)
           ~n:4 ~max_f:2 ~max_round:3)
  in
  match
    Dist.Fleet.run_local ~lease_timeout:2.0 ~workers:2
      ~addr:(Unix.ADDR_UNIX sock) job
  with
  | Error why -> Alcotest.fail why
  | Ok o ->
    Alcotest.(check int) "violating classes match the local sweep"
      expected_violations o.Dist.Fleet.report.Dist.Coordinator.violations_total;
    Alcotest.(check bool) "violations are reported in canonical order" true
      (let rec sorted = function
         | a :: (b :: _ as rest) ->
           Adversary.Canonical.compare a.P.schedule b.P.schedule <= 0
           && sorted rest
         | _ -> true
       in
       sorted o.Dist.Fleet.report.Dist.Coordinator.violations)

let test_fleet_absorbs_worker_kill () =
  let sock = tmp_name "fleet-kill.sock" in
  cleanup [ sock ];
  let job = { sample_job with P.shards = 8 } in
  match
    Dist.Fleet.run_local ~lease_timeout:1.0 ~workers:2 ~kill_one_after:40
      ~addr:(Unix.ADDR_UNIX sock) job
  with
  | Error why -> Alcotest.fail why
  | Ok o ->
    let r = o.Dist.Fleet.report in
    Alcotest.(check int) "classes" (canonical_classes ~n:4 ~max_f:2 ~max_round:3)
      r.Dist.Coordinator.classes;
    Alcotest.(check int) "one scripted death" 1 o.Dist.Fleet.chaos_deaths;
    Alcotest.(check int) "no unscripted failures" 0 o.Dist.Fleet.worker_failures;
    Alcotest.(check bool) "the killed worker's lease was re-granted" true
      (r.Dist.Coordinator.regrants >= 1)

(* --- resume after coordinator SIGKILL -------------------------------------- *)

let fork_coordinator ~checkpoint ~addr job =
  match Unix.fork () with
  | 0 ->
    let code =
      match
        Dist.Coordinator.serve
          (Dist.Coordinator.config ~lease_timeout:1.0 ~checkpoint ~addr job)
      with
      | Ok _ -> 0
      | Error why ->
        Printf.eprintf "coordinator: %s\n%!" why;
        1
    in
    Unix._exit code
  | pid -> pid

(* The acceptance scenario, end to end at the paper-scale sweep
   (n = 5, max_f = 3: 6048 canonical classes over 3.3M raw schedules):

   phase 1: a coordinator with a checkpoint file and a single worker that
   dies on its 4th grant — three shards get checkpointed, then the
   coordinator is SIGKILL'd mid-sweep;

   phase 2: a fresh coordinator resumes from the checkpoint with a
   two-worker fleet, one of which is killed mid-shard — the sweep must
   still complete, re-executing no finished shard, with exactly the
   single-machine class count and verdict. *)
let test_resume_after_coordinator_sigkill () =
  let sock = tmp_name "resume.sock" in
  let ckpt = tmp_name "resume.ckpt" in
  cleanup [ sock; ckpt ];
  let job =
    {
      P.algo = "rwwc";
      n = 5;
      max_f = 3;
      max_round = 3;
      shards = 24;
      symmetry = true;
      heartbeat_every = 0.25;
    }
  in
  (* Phase 1. *)
  let coord = fork_coordinator ~checkpoint:ckpt ~addr:(Unix.ADDR_UNIX sock) job in
  let worker =
    Dist.Fleet.spawn_worker
      ~chaos:{ Dist.Worker.no_chaos with die_on_grant = Some 4 }
      ~addr:(Unix.ADDR_UNIX sock) ()
  in
  (match Unix.waitpid [] worker with
  | _, Unix.WEXITED c ->
    Alcotest.(check int) "worker died at its chaos point"
      Dist.Worker.chaos_exit_code c
  | _ -> Alcotest.fail "worker did not exit");
  (* The worker heard three acks before its fatal grant, and every ack
     happens after the checkpoint hits disk — the file is complete now. *)
  Unix.kill coord Sys.sigkill;
  ignore (Unix.waitpid [] coord);
  let phase1_shards =
    match Dist.Checkpoint.load ckpt with
    | Error why -> Alcotest.fail why
    | Ok c -> List.map (fun r -> r.P.shard) c.Dist.Checkpoint.results
  in
  Alcotest.(check (list int)) "three shards survived the kill" [ 0; 1; 2 ]
    phase1_shards;
  (* Phase 2. *)
  (match
     Dist.Fleet.run_local ~lease_timeout:1.0 ~checkpoint:ckpt ~workers:2
       ~kill_one_after:2000 ~addr:(Unix.ADDR_UNIX sock) job
   with
  | Error why -> Alcotest.fail why
  | Ok o ->
    let r = o.Dist.Fleet.report in
    Alcotest.(check (list int))
      "resumed exactly the checkpointed shards" phase1_shards
      r.Dist.Coordinator.resumed;
    Alcotest.(check (list int))
      "no finished shard re-ran"
      (List.filter (fun s -> not (List.mem s phase1_shards))
         (List.init job.P.shards Fun.id))
      r.Dist.Coordinator.executed;
    Alcotest.(check int) "paper-scale class count" 6048 r.Dist.Coordinator.classes;
    Alcotest.(check int) "single-machine class count"
      (canonical_classes ~n:5 ~max_f:3 ~max_round:3)
      r.Dist.Coordinator.classes;
    Alcotest.(check int) "verdict identical to single-machine check" 0
      r.Dist.Coordinator.violations_total;
    Alcotest.(check int) "the mid-sweep worker kill happened" 1
      o.Dist.Fleet.chaos_deaths;
    Alcotest.(check int) "no unscripted failures" 0 o.Dist.Fleet.worker_failures);
  cleanup [ sock; ckpt ]

let test_auto_shards () =
  (* Oversharding by the straggler factor keeps the tail short: the last
     shard a slow worker holds is 1/8 of an even split. *)
  Alcotest.(check int) "4 workers" 32 (Dist.Fleet.auto_shards ~workers:4 ());
  Alcotest.(check int) "1 worker" 8 (Dist.Fleet.auto_shards ~workers:1 ());
  Alcotest.(check int) "custom factor" 12
    (Dist.Fleet.auto_shards ~straggler:3 ~workers:4 ());
  (* Degenerate worker counts still yield at least one shard per factor. *)
  Alcotest.(check int) "0 workers clamps" 8
    (Dist.Fleet.auto_shards ~workers:0 ())

let () =
  Alcotest.run "dist"
    [
      ( "protocol",
        [
          Alcotest.test_case "message roundtrip" `Quick test_msg_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_msg_rejects_garbage;
          Alcotest.test_case "violation cap fits a frame" `Quick
            test_cap_violations;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "rejects truncation" `Quick
            test_checkpoint_rejects_truncation;
          Alcotest.test_case "rejects bad shards" `Quick
            test_checkpoint_rejects_out_of_range_and_dup;
          Alcotest.test_case "repro shares the crash window" `Quick
            test_repro_save_rejects_truncation;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "auto-shards oversharding" `Quick test_auto_shards;
          Alcotest.test_case "matches the local sweep" `Quick
            test_fleet_matches_local;
          Alcotest.test_case "broken algo verdicts match" `Quick
            test_fleet_broken_algo_reports_violations;
          Alcotest.test_case "absorbs a worker kill" `Quick
            test_fleet_absorbs_worker_kill;
        ] );
      ( "resume",
        [
          Alcotest.test_case "coordinator SIGKILL + resume (n=5 acceptance)"
            `Quick test_resume_after_coordinator_sigkill;
        ] );
    ]
