(* Consensus-as-a-service: the instance slab, the multiplexer, the
   deterministic loopback storm engine, batching, and kill-mid-storm
   judging — socket fleet smoke lives at the bottom. *)

(* --- Slab ------------------------------------------------------------------- *)

let test_slab_basics () =
  let slab = Serve.Slab.create ~initial:2 () in
  let mk v () = ref v in
  let a = Serve.Slab.acquire slab ~instance:7 ~create:(mk 1) ~recycle:(fun r -> r := 1) in
  let b = Serve.Slab.acquire slab ~instance:9 ~create:(mk 2) ~recycle:(fun r -> r := 2) in
  Alcotest.(check int) "a" 1 !a;
  Alcotest.(check int) "b" 2 !b;
  Alcotest.(check int) "active" 2 (Serve.Slab.active slab);
  Alcotest.(check bool) "find 7" true (Serve.Slab.find slab ~instance:7 = Some a);
  Alcotest.(check bool) "find 8" true (Serve.Slab.find slab ~instance:8 = None);
  (match Serve.Slab.acquire slab ~instance:7 ~create:(mk 0) ~recycle:ignore with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double acquire accepted");
  Serve.Slab.release slab ~instance:7;
  Alcotest.(check bool) "released" true (Serve.Slab.find slab ~instance:7 = None);
  Alcotest.(check int) "active after release" 1 (Serve.Slab.active slab)

let test_slab_reuse_bounded () =
  (* Thousands of sequential instances must recycle a handful of slots:
     allocation is per concurrent instance, never per decision. *)
  let slab = Serve.Slab.create ~initial:4 () in
  for i = 0 to 4999 do
    let r =
      Serve.Slab.acquire slab ~instance:i
        ~create:(fun () -> ref 0)
        ~recycle:(fun r -> r := 0)
    in
    r := i;
    Serve.Slab.release slab ~instance:i
  done;
  Alcotest.(check int) "capacity stays 1" 1 (Serve.Slab.capacity slab);
  Alcotest.(check int) "reused" 4999 (Serve.Slab.reused slab);
  Alcotest.(check int) "nothing active" 0 (Serve.Slab.active slab)

let test_slab_iter_order () =
  let slab = Serve.Slab.create () in
  List.iter
    (fun i ->
      ignore
        (Serve.Slab.acquire slab ~instance:i
           ~create:(fun () -> ref i)
           ~recycle:(fun r -> r := i)))
    [ 30; 10; 20 ];
  Serve.Slab.release slab ~instance:10;
  let seen = ref [] in
  Serve.Slab.iter slab (fun id _ -> seen := id :: !seen);
  (* slot (allocation) order, not id order *)
  Alcotest.(check (list int)) "iter order" [ 30; 20 ] (List.rev !seen)

(* --- Bitvec ----------------------------------------------------------------- *)

let test_bitvec () =
  let bv = Serve.Bitvec.create () in
  Alcotest.(check bool) "empty" false (Serve.Bitvec.mem bv 0);
  Serve.Bitvec.set bv 0;
  Serve.Bitvec.set bv 7;
  Serve.Bitvec.set bv 100_000;
  Alcotest.(check bool) "0" true (Serve.Bitvec.mem bv 0);
  Alcotest.(check bool) "7" true (Serve.Bitvec.mem bv 7);
  Alcotest.(check bool) "8" false (Serve.Bitvec.mem bv 8);
  Alcotest.(check bool) "100000" true (Serve.Bitvec.mem bv 100_000);
  Alcotest.(check bool) "99999" false (Serve.Bitvec.mem bv 99_999)

(* --- Mux: frames arriving before the submit --------------------------------- *)

module M = Serve.Mux.Make (Serve.Binding.Rwwc)

let view_of_frame f =
  let d = Live.Frame.decoder () in
  Live.Frame.feed_string d (Live.Frame.encode f);
  match Live.Frame.pop_view d with
  | `View v -> v
  | _ -> Alcotest.fail "frame did not decode"

let test_mux_early_frames () =
  (* p2 in an n=3 mesh: round-1 coordinator traffic for instance 5 arrives
     before the local client submits it.  The mux parks the frames and the
     late submit still decides instantly. *)
  let emitted = ref [] in
  let mux =
    M.create
      { Serve.Mux.me = 2; n = 3; t = 1; big_d = 1.0; max_rounds = 2; kill_after = None }
      ~emit:(fun ~dest f -> emitted := (dest, f) :: !emitted)
  in
  let payload = Serve.Binding.Rwwc.encode_msg (Core.Rwwc.Data 41) in
  M.on_view mux ~now:0.0 ~from:1
    (view_of_frame (Live.Frame.Data { instance = 5; round = 1; payload }));
  M.on_view mux ~now:0.0 ~from:1
    (view_of_frame (Live.Frame.Ctl { instance = 5; round = 1 }));
  Alcotest.(check int) "no decision yet" 0 (List.length !emitted);
  M.submit mux ~now:0.0 ~instance:5 ~proposal:99;
  (match !emitted with
  | [ (0, Live.Frame.Decide { instance = 5; value = 41; round = 1 }) ] -> ()
  | _ -> Alcotest.fail "expected exactly one Decide{i5,v41,r1} to the client");
  Alcotest.(check int) "slot released" 0 (M.active mux)

let test_mux_deadline_fallback () =
  (* No coordinator traffic at all: the round expires at the deadline and
     the instance advances to p2's own coordination round, which decides. *)
  let emitted = ref [] in
  let mux =
    M.create
      { Serve.Mux.me = 2; n = 3; t = 1; big_d = 0.5; max_rounds = 2; kill_after = None }
      ~emit:(fun ~dest f -> emitted := (dest, f) :: !emitted)
  in
  M.submit mux ~now:0.0 ~instance:0 ~proposal:17;
  Alcotest.(check (option (float 0.001))) "deadline pending" (Some 0.5)
    (M.next_deadline mux);
  M.expire mux ~now:0.1;
  Alcotest.(check int) "not yet" 1 (M.active mux);
  M.expire mux ~now:0.5;
  (* round 2: me = coordinator, sends data+ctl to p3 and decides *)
  let decides, mesh =
    List.partition (fun (d, _) -> d = 0) (List.rev !emitted)
  in
  (match decides with
  | [ (0, Live.Frame.Decide { instance = 0; value = 17; round = 2 }) ] -> ()
  | _ -> Alcotest.fail "expected own-round decide at r2");
  Alcotest.(check int) "mesh frames to p3" 2 (List.length mesh);
  Alcotest.(check int) "expired round counted" 1
    (M.stats mux).Serve.Stats.expired_rounds

let test_mux_resubmit_served_from_log () =
  (* Consensus as a service: once an instance decided, a re-submit (a
     reconnecting client) is answered from the decision log, not re-run. *)
  let emitted = ref [] in
  let mux =
    M.create
      { Serve.Mux.me = 2; n = 3; t = 1; big_d = 1.0; max_rounds = 2; kill_after = None }
      ~emit:(fun ~dest f -> emitted := (dest, f) :: !emitted)
  in
  let payload = Serve.Binding.Rwwc.encode_msg (Core.Rwwc.Data 41) in
  M.on_view mux ~now:0.0 ~from:1
    (view_of_frame (Live.Frame.Data { instance = 5; round = 1; payload }));
  M.on_view mux ~now:0.0 ~from:1
    (view_of_frame (Live.Frame.Ctl { instance = 5; round = 1 }));
  M.submit mux ~now:0.0 ~instance:5 ~proposal:99;
  let first = !emitted in
  M.submit mux ~now:1.0 ~instance:5 ~proposal:77;
  (match (!emitted, first) with
  | ( (0, Live.Frame.Decide { instance = 5; value = 41; round = 1 }) :: _,
      [ (0, Live.Frame.Decide { instance = 5; value = 41; round = 1 }) ] ) ->
    ()
  | _ -> Alcotest.fail "re-submit must replay the identical Decide");
  Alcotest.(check int) "still no live slot" 0 (M.active mux);
  Alcotest.(check int) "decided exactly once" 1
    (M.stats mux).Serve.Stats.decides

(* --- Loopback storms --------------------------------------------------------- *)

let storm ?(n = 5) ?(t = 2) ?(window = 64) ?(batch = true) ?kill instances =
  Serve.Loopback.Rwwc.run
    {
      Serve.Loopback.Rwwc.n;
      t;
      instances;
      window;
      big_d = 0.25;
      batch;
      kill;
      max_rounds = None;
      proposals = (fun i node -> (i * n) + node);
    }

let test_loopback_storm_decides () =
  let r = storm 300 in
  Alcotest.(check bool) "ok" true r.Serve.Report.ok;
  Alcotest.(check int) "completed" 300 r.Serve.Report.completed;
  Alcotest.(check int) "undecided" 0 r.Serve.Report.undecided;
  (* No kill: every round completes at message speed. *)
  Alcotest.(check int) "no expired rounds" 0
    r.Serve.Report.total.Serve.Stats.expired_rounds;
  Alcotest.(check bool) "latency recorded" true
    (r.Serve.Report.latency <> None);
  List.iter
    (fun (node, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d slab bounded" node)
        true
        (s.Serve.Stats.slab_capacity <= 64 + 1))
    r.Serve.Report.stats

let test_loopback_deterministic () =
  let a = storm 120 and b = storm 120 in
  let obs (r : Serve.Report.t) =
    ( r.Serve.Report.completed,
      r.Serve.Report.undecided,
      r.Serve.Report.total.Serve.Stats.frames_out,
      r.Serve.Report.total.Serve.Stats.write_calls,
      r.Serve.Report.total.Serve.Stats.fast_rounds,
      r.Serve.Report.total.Serve.Stats.expired_rounds,
      match r.Serve.Report.latency with
      | Some l -> l.Serve.Report.p99
      | None -> -1.0 )
  in
  Alcotest.(check bool) "identical observables" true (obs a = obs b)

let test_loopback_batching_reduces_writes () =
  let batched = storm 200 ~batch:true in
  let unbatched = storm 200 ~batch:false in
  let writes (r : Serve.Report.t) = r.Serve.Report.total.Serve.Stats.write_calls in
  let frames (r : Serve.Report.t) = r.Serve.Report.total.Serve.Stats.frames_out in
  Alcotest.(check bool) "both pass" true
    (batched.Serve.Report.ok && unbatched.Serve.Report.ok);
  Alcotest.(check int) "same frames" (frames unbatched) (frames batched);
  Alcotest.(check bool)
    (Printf.sprintf "batching cuts write calls (%d < %d)" (writes batched)
       (writes unbatched))
    true
    (writes batched * 4 <= writes unbatched);
  Alcotest.(check bool) "unbatched is one write per frame" true
    (writes unbatched = frames unbatched);
  Alcotest.(check bool) "coalescing observed" true
    (batched.Serve.Report.total.Serve.Stats.max_batch > 1)

let test_loopback_kill_mid_storm () =
  (* p1 dies 57 mesh writes into a 200-instance storm: 7 instances fully
     coordinated (8 frames each), the 8th caught after one data write. *)
  let r = storm 200 ~kill:{ Serve.Report.node = 1; after_frames = 57 } in
  Alcotest.(check bool) "ok" true r.Serve.Report.ok;
  Alcotest.(check int) "all settle for survivors" 200 r.Serve.Report.completed;
  Alcotest.(check bool) "rounds expired while p1 dead" true
    (r.Serve.Report.total.Serve.Stats.expired_rounds > 0);
  match List.assoc_opt 1 r.Serve.Report.stats with
  | None -> Alcotest.fail "no victim stats"
  | Some s -> Alcotest.(check int) "victim decided 7 instances" 7 s.Serve.Stats.decides

let test_loopback_kill_realized_phases () =
  (* Reach inside: the realized crash points must show the exact prefix
     semantics — instance 7 mid-data after 1 write, every other active
     instance before its round-1 send. *)
  let cfg =
    {
      Serve.Loopback.Rwwc.n = 5;
      t = 2;
      instances = 100;
      window = 32;
      big_d = 0.25;
      batch = true;
      kill = Some { Serve.Report.node = 1; after_frames = 57 };
      max_rounds = None;
      proposals = (fun i node -> (i * 5) + node);
    }
  in
  let r = Serve.Loopback.Rwwc.run cfg in
  Alcotest.(check bool) "ok" true r.Serve.Report.ok;
  Alcotest.(check bool) "no failures" true (r.Serve.Report.failures = [])

let test_loopback_no_kill_when_budget_unreached () =
  let r = storm 5 ~kill:{ Serve.Report.node = 2; after_frames = 10_000 } in
  Alcotest.(check bool) "ok" true r.Serve.Report.ok;
  Alcotest.(check int) "completed" 5 r.Serve.Report.completed

(* --- Socket fleet ------------------------------------------------------------ *)

let fleet_workspace tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-%s-%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let run_fleet ?(n = 3) ?(t = 1) ?(window = 16) ?kill ~tag instances =
  let dir = fleet_workspace tag in
  Serve.Fleet.run
    {
      Serve.Fleet.n;
      t;
      transport = `Unix dir;
      workspace = dir;
      instances;
      window;
      big_d = 0.3;
      batch = true;
      kill;
      max_rounds = None;
      proposals = (fun i node -> (i * n) + node);
      client_timeout = None;
      verbose = false;
    }

let test_fleet_smoke () =
  match run_fleet ~tag:"smoke" 50 with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "ok" true r.Serve.Report.ok;
    Alcotest.(check int) "completed" 50 r.Serve.Report.completed;
    Alcotest.(check int) "undecided" 0 r.Serve.Report.undecided;
    Alcotest.(check bool) "stats from every engine" true
      (List.length r.Serve.Report.stats = 3);
    Alcotest.(check bool) "batching coalesced" true
      (r.Serve.Report.total.Serve.Stats.max_batch > 1)

let test_fleet_kill_mid_storm () =
  match
    run_fleet ~tag:"kill" ~n:5 ~t:2
      ~kill:{ Serve.Report.node = 1; after_frames = 57 }
      120
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "ok" true r.Serve.Report.ok;
    Alcotest.(check int) "survivors settle everything" 120
      r.Serve.Report.completed;
    Alcotest.(check bool) "kill realized" true
      (match List.assoc_opt 1 r.Serve.Report.stats with
      | Some _ -> true
      | None -> false)

let () =
  Alcotest.run "serve"
    [
      ( "slab",
        [
          Alcotest.test_case "basics" `Quick test_slab_basics;
          Alcotest.test_case "reuse-bounded" `Quick test_slab_reuse_bounded;
          Alcotest.test_case "iter-order" `Quick test_slab_iter_order;
        ] );
      ("bitvec", [ Alcotest.test_case "grow-set-mem" `Quick test_bitvec ]);
      ( "mux",
        [
          Alcotest.test_case "early-frames" `Quick test_mux_early_frames;
          Alcotest.test_case "deadline-fallback" `Quick test_mux_deadline_fallback;
          Alcotest.test_case "resubmit-served-from-log" `Quick
            test_mux_resubmit_served_from_log;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "storm-decides" `Quick test_loopback_storm_decides;
          Alcotest.test_case "deterministic" `Quick test_loopback_deterministic;
          Alcotest.test_case "batching-reduces-writes" `Quick
            test_loopback_batching_reduces_writes;
          Alcotest.test_case "kill-mid-storm" `Quick test_loopback_kill_mid_storm;
          Alcotest.test_case "kill-realized-phases" `Quick
            test_loopback_kill_realized_phases;
          Alcotest.test_case "kill-budget-unreached" `Quick
            test_loopback_no_kill_when_budget_unreached;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "unix-smoke" `Slow test_fleet_smoke;
          Alcotest.test_case "unix-kill-mid-storm" `Slow
            test_fleet_kill_mid_storm;
        ] );
    ]
