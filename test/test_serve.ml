(* Consensus-as-a-service: the instance slab, the multiplexer, the
   deterministic loopback storm engine, batching, and kill-mid-storm
   judging — socket fleet smoke lives at the bottom. *)

(* --- Slab ------------------------------------------------------------------- *)

let test_slab_basics () =
  let slab = Serve.Slab.create ~initial:2 () in
  let mk v () = ref v in
  let a = Serve.Slab.acquire slab ~instance:7 ~create:(mk 1) ~recycle:(fun r -> r := 1) in
  let b = Serve.Slab.acquire slab ~instance:9 ~create:(mk 2) ~recycle:(fun r -> r := 2) in
  Alcotest.(check int) "a" 1 !a;
  Alcotest.(check int) "b" 2 !b;
  Alcotest.(check int) "active" 2 (Serve.Slab.active slab);
  Alcotest.(check bool) "find 7" true (Serve.Slab.find slab ~instance:7 = Some a);
  Alcotest.(check bool) "find 8" true (Serve.Slab.find slab ~instance:8 = None);
  (match Serve.Slab.acquire slab ~instance:7 ~create:(mk 0) ~recycle:ignore with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double acquire accepted");
  Serve.Slab.release slab ~instance:7;
  Alcotest.(check bool) "released" true (Serve.Slab.find slab ~instance:7 = None);
  Alcotest.(check int) "active after release" 1 (Serve.Slab.active slab)

let test_slab_reuse_bounded () =
  (* Thousands of sequential instances must recycle a handful of slots:
     allocation is per concurrent instance, never per decision. *)
  let slab = Serve.Slab.create ~initial:4 () in
  for i = 0 to 4999 do
    let r =
      Serve.Slab.acquire slab ~instance:i
        ~create:(fun () -> ref 0)
        ~recycle:(fun r -> r := 0)
    in
    r := i;
    Serve.Slab.release slab ~instance:i
  done;
  Alcotest.(check int) "capacity stays 1" 1 (Serve.Slab.capacity slab);
  Alcotest.(check int) "reused" 4999 (Serve.Slab.reused slab);
  Alcotest.(check int) "nothing active" 0 (Serve.Slab.active slab)

let test_slab_iter_order () =
  let slab = Serve.Slab.create () in
  List.iter
    (fun i ->
      ignore
        (Serve.Slab.acquire slab ~instance:i
           ~create:(fun () -> ref i)
           ~recycle:(fun r -> r := i)))
    [ 30; 10; 20 ];
  Serve.Slab.release slab ~instance:10;
  let seen = ref [] in
  Serve.Slab.iter slab (fun id _ -> seen := id :: !seen);
  (* slot (allocation) order, not id order *)
  Alcotest.(check (list int)) "iter order" [ 30; 20 ] (List.rev !seen)

(* --- Bitvec ----------------------------------------------------------------- *)

let test_bitvec () =
  let bv = Serve.Bitvec.create () in
  Alcotest.(check bool) "empty" false (Serve.Bitvec.mem bv 0);
  Serve.Bitvec.set bv 0;
  Serve.Bitvec.set bv 7;
  Serve.Bitvec.set bv 100_000;
  Alcotest.(check bool) "0" true (Serve.Bitvec.mem bv 0);
  Alcotest.(check bool) "7" true (Serve.Bitvec.mem bv 7);
  Alcotest.(check bool) "8" false (Serve.Bitvec.mem bv 8);
  Alcotest.(check bool) "100000" true (Serve.Bitvec.mem bv 100_000);
  Alcotest.(check bool) "99999" false (Serve.Bitvec.mem bv 99_999)

(* --- Mux: frames arriving before the submit --------------------------------- *)

module M = Serve.Mux.Make (Serve.Binding.Rwwc)

let view_of_frame f =
  let d = Live.Frame.decoder () in
  Live.Frame.feed_string d (Live.Frame.encode f);
  match Live.Frame.pop_view d with
  | `View v -> v
  | _ -> Alcotest.fail "frame did not decode"

let test_mux_early_frames () =
  (* p2 in an n=3 mesh: round-1 coordinator traffic for instance 5 arrives
     before the local client submits it.  The mux parks the frames and the
     late submit still decides instantly. *)
  let emitted = ref [] in
  let mux =
    M.create
      { Serve.Mux.me = 2; n = 3; t = 1; big_d = 1.0; max_rounds = 2; kill_after = None }
      ~emit:(fun ~dest f -> emitted := (dest, f) :: !emitted)
      ()
  in
  let payload = Serve.Binding.Rwwc.encode_msg (Core.Rwwc.Data 41) in
  M.on_view mux ~now:0.0 ~from:1
    (view_of_frame (Live.Frame.Data { instance = 5; round = 1; payload }));
  M.on_view mux ~now:0.0 ~from:1
    (view_of_frame (Live.Frame.Ctl { instance = 5; round = 1 }));
  Alcotest.(check int) "no decision yet" 0 (List.length !emitted);
  M.submit mux ~now:0.0 ~instance:5 ~proposal:99;
  (match !emitted with
  | [ (0, Live.Frame.Decide { instance = 5; value = 41; round = 1 }) ] -> ()
  | _ -> Alcotest.fail "expected exactly one Decide{i5,v41,r1} to the client");
  Alcotest.(check int) "slot released" 0 (M.active mux)

let test_mux_deadline_fallback () =
  (* No coordinator traffic at all: the round expires at the deadline and
     the instance advances to p2's own coordination round, which decides. *)
  let emitted = ref [] in
  let mux =
    M.create
      { Serve.Mux.me = 2; n = 3; t = 1; big_d = 0.5; max_rounds = 2; kill_after = None }
      ~emit:(fun ~dest f -> emitted := (dest, f) :: !emitted)
      ()
  in
  M.submit mux ~now:0.0 ~instance:0 ~proposal:17;
  Alcotest.(check (option (float 0.001))) "deadline pending" (Some 0.5)
    (M.next_deadline mux);
  M.expire mux ~now:0.1;
  Alcotest.(check int) "not yet" 1 (M.active mux);
  M.expire mux ~now:0.5;
  (* round 2: me = coordinator, sends data+ctl to p3 and decides *)
  let decides, mesh =
    List.partition (fun (d, _) -> d = 0) (List.rev !emitted)
  in
  (match decides with
  | [ (0, Live.Frame.Decide { instance = 0; value = 17; round = 2 }) ] -> ()
  | _ -> Alcotest.fail "expected own-round decide at r2");
  Alcotest.(check int) "mesh frames to p3" 2 (List.length mesh);
  Alcotest.(check int) "expired round counted" 1
    (M.stats mux).Serve.Stats.expired_rounds

let test_mux_resubmit_served_from_log () =
  (* Consensus as a service: once an instance decided, a re-submit (a
     reconnecting client) is answered from the decision log, not re-run. *)
  let emitted = ref [] in
  let mux =
    M.create
      { Serve.Mux.me = 2; n = 3; t = 1; big_d = 1.0; max_rounds = 2; kill_after = None }
      ~emit:(fun ~dest f -> emitted := (dest, f) :: !emitted)
      ()
  in
  let payload = Serve.Binding.Rwwc.encode_msg (Core.Rwwc.Data 41) in
  M.on_view mux ~now:0.0 ~from:1
    (view_of_frame (Live.Frame.Data { instance = 5; round = 1; payload }));
  M.on_view mux ~now:0.0 ~from:1
    (view_of_frame (Live.Frame.Ctl { instance = 5; round = 1 }));
  M.submit mux ~now:0.0 ~instance:5 ~proposal:99;
  let first = !emitted in
  M.submit mux ~now:1.0 ~instance:5 ~proposal:77;
  (match (!emitted, first) with
  | ( (0, Live.Frame.Decide { instance = 5; value = 41; round = 1 }) :: _,
      [ (0, Live.Frame.Decide { instance = 5; value = 41; round = 1 }) ] ) ->
    ()
  | _ -> Alcotest.fail "re-submit must replay the identical Decide");
  Alcotest.(check int) "still no live slot" 0 (M.active mux);
  Alcotest.(check int) "decided exactly once" 1
    (M.stats mux).Serve.Stats.decides

(* --- Loopback storms --------------------------------------------------------- *)

let storm ?(n = 5) ?(t = 2) ?(window = 64) ?(batch = true) ?kill instances =
  Serve.Loopback.Rwwc.run
    {
      Serve.Loopback.Rwwc.n;
      t;
      instances;
      window;
      big_d = 0.25;
      batch;
      kill;
      max_rounds = None;
      proposals = (fun i node -> (i * n) + node);
    }

let test_loopback_storm_decides () =
  let r = storm 300 in
  Alcotest.(check bool) "ok" true r.Serve.Report.ok;
  Alcotest.(check int) "completed" 300 r.Serve.Report.completed;
  Alcotest.(check int) "undecided" 0 r.Serve.Report.undecided;
  (* No kill: every round completes at message speed. *)
  Alcotest.(check int) "no expired rounds" 0
    r.Serve.Report.total.Serve.Stats.expired_rounds;
  Alcotest.(check bool) "latency recorded" true
    (r.Serve.Report.latency <> None);
  List.iter
    (fun (node, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d slab bounded" node)
        true
        (s.Serve.Stats.slab_capacity <= 64 + 1))
    r.Serve.Report.stats

let test_loopback_deterministic () =
  let a = storm 120 and b = storm 120 in
  let obs (r : Serve.Report.t) =
    ( r.Serve.Report.completed,
      r.Serve.Report.undecided,
      r.Serve.Report.total.Serve.Stats.frames_out,
      r.Serve.Report.total.Serve.Stats.write_calls,
      r.Serve.Report.total.Serve.Stats.fast_rounds,
      r.Serve.Report.total.Serve.Stats.expired_rounds,
      match r.Serve.Report.latency with
      | Some l -> l.Serve.Report.p99
      | None -> -1.0 )
  in
  Alcotest.(check bool) "identical observables" true (obs a = obs b)

let test_loopback_batching_reduces_writes () =
  let batched = storm 200 ~batch:true in
  let unbatched = storm 200 ~batch:false in
  let writes (r : Serve.Report.t) = r.Serve.Report.total.Serve.Stats.write_calls in
  let frames (r : Serve.Report.t) = r.Serve.Report.total.Serve.Stats.frames_out in
  Alcotest.(check bool) "both pass" true
    (batched.Serve.Report.ok && unbatched.Serve.Report.ok);
  Alcotest.(check int) "same frames" (frames unbatched) (frames batched);
  Alcotest.(check bool)
    (Printf.sprintf "batching cuts write calls (%d < %d)" (writes batched)
       (writes unbatched))
    true
    (writes batched * 4 <= writes unbatched);
  Alcotest.(check bool) "unbatched is one write per frame" true
    (writes unbatched = frames unbatched);
  Alcotest.(check bool) "coalescing observed" true
    (batched.Serve.Report.total.Serve.Stats.max_batch > 1);
  (* Zero-copy flush: every batched flush hands its buffer to the send
     callback instead of materializing a [Buffer.contents] string. *)
  Alcotest.(check bool) "copies saved counted" true
    (batched.Serve.Report.total.Serve.Stats.copies_saved > 0)

let test_loopback_kill_mid_storm () =
  (* p1 dies 57 mesh writes into a 200-instance storm: 7 instances fully
     coordinated (8 frames each), the 8th caught after one data write. *)
  let r = storm 200 ~kill:{ Serve.Report.node = 1; after_frames = 57 } in
  Alcotest.(check bool) "ok" true r.Serve.Report.ok;
  Alcotest.(check int) "all settle for survivors" 200 r.Serve.Report.completed;
  Alcotest.(check bool) "rounds expired while p1 dead" true
    (r.Serve.Report.total.Serve.Stats.expired_rounds > 0);
  match List.assoc_opt 1 r.Serve.Report.stats with
  | None -> Alcotest.fail "no victim stats"
  | Some s -> Alcotest.(check int) "victim decided 7 instances" 7 s.Serve.Stats.decides

let test_loopback_kill_realized_phases () =
  (* Reach inside: the realized crash points must show the exact prefix
     semantics — instance 7 mid-data after 1 write, every other active
     instance before its round-1 send. *)
  let cfg =
    {
      Serve.Loopback.Rwwc.n = 5;
      t = 2;
      instances = 100;
      window = 32;
      big_d = 0.25;
      batch = true;
      kill = Some { Serve.Report.node = 1; after_frames = 57 };
      max_rounds = None;
      proposals = (fun i node -> (i * 5) + node);
    }
  in
  let r = Serve.Loopback.Rwwc.run cfg in
  Alcotest.(check bool) "ok" true r.Serve.Report.ok;
  Alcotest.(check bool) "no failures" true (r.Serve.Report.failures = [])

let test_loopback_no_kill_when_budget_unreached () =
  let r = storm 5 ~kill:{ Serve.Report.node = 2; after_frames = 10_000 } in
  Alcotest.(check bool) "ok" true r.Serve.Report.ok;
  Alcotest.(check int) "completed" 5 r.Serve.Report.completed

(* --- Evloop ------------------------------------------------------------------ *)

let wait_events ev ~timeout =
  let seen = ref [] in
  let n =
    Serve.Evloop.wait ev ~timeout ~handle:(fun fd ~readable ~writable ->
        seen := (fd, readable, writable) :: !seen)
  in
  (n, !seen)

let test_evloop_backend backend () =
  if backend = Serve.Evloop.Poll && not Serve.Evloop.poll_available then ()
  else begin
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_nonblock a;
    Unix.set_nonblock b;
    let ev = Serve.Evloop.create ~backend () in
    Serve.Evloop.register ev a ~read:true ~write:false;
    Alcotest.(check int) "registered" 1 (Serve.Evloop.registered ev);
    let n, _ = wait_events ev ~timeout:0.0 in
    Alcotest.(check int) "quiet" 0 n;
    ignore (Unix.write b (Bytes.of_string "x") 0 1);
    let n, seen = wait_events ev ~timeout:1.0 in
    Alcotest.(check int) "one ready" 1 n;
    (match seen with
    | [ (fd, true, false) ] when fd = a -> ()
    | _ -> Alcotest.fail "expected a readable, not writable");
    (* write interest: a fresh socket is writable immediately; readable
       state must be reported in the same callback *)
    Serve.Evloop.register ev a ~read:true ~write:true;
    let _, seen = wait_events ev ~timeout:1.0 in
    (match seen with
    | [ (fd, true, true) ] when fd = a -> ()
    | _ -> Alcotest.fail "expected a readable and writable");
    Serve.Evloop.deregister ev a;
    Alcotest.(check int) "deregistered" 0 (Serve.Evloop.registered ev);
    let n, _ = wait_events ev ~timeout:0.0 in
    Alcotest.(check int) "nothing watched" 0 n;
    Unix.close a;
    Unix.close b
  end

(* Property: on the same fd state and the same interest sets, the poll
   backend reports exactly the readiness sets the select backend does. *)
let prop_backends_agree =
  QCheck.Test.make ~count:100 ~name:"evloop-select-vs-poll-agree"
    QCheck.(
      list_of_size (Gen.return 4) (triple bool bool bool))
    (fun specs ->
      QCheck.assume (Serve.Evloop.poll_available);
      let pairs =
        List.map
          (fun spec -> (spec, Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0))
          specs
      in
      let observe backend =
        let ev = Serve.Evloop.create ~backend () in
        List.iter
          (fun ((read, write, _), (a, _)) ->
            Unix.set_nonblock a;
            Serve.Evloop.register ev a ~read ~write)
          pairs;
        let seen = ref [] in
        ignore
          (Serve.Evloop.wait ev ~timeout:0.05
             ~handle:(fun fd ~readable ~writable ->
               seen := (fd, readable, writable) :: !seen));
        List.sort compare !seen
      in
      List.iter
        (fun ((_, _, data), (_, b)) ->
          if data then ignore (Unix.write b (Bytes.of_string "d") 0 1))
        pairs;
      let from_select = observe Serve.Evloop.Select in
      let from_poll = observe Serve.Evloop.Poll in
      List.iter
        (fun (_, (a, b)) ->
          Unix.close a;
          Unix.close b)
        pairs;
      from_select = from_poll)

(* --- Outq -------------------------------------------------------------------- *)

let sendbuf_pair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096
   with Unix.Unix_error _ -> ());
  (a, b)

let test_outq_partial_write_resume () =
  let a, b = sendbuf_pair () in
  let stats = Serve.Stats.create () in
  let q = Serve.Outq.create () in
  let len = 512 * 1024 in
  let payload = Bytes.init len (fun i -> Char.chr (i land 0xff)) in
  let recycled = ref 0 in
  Serve.Outq.push q
    (Serve.Outq.chunk ~recycle:(fun _ -> incr recycled) payload ~len);
  let received = Buffer.create len in
  let rbuf = Bytes.create 65536 in
  let rec pump guard =
    if guard = 0 then Alcotest.fail "outq never drained"
    else
      match Serve.Outq.drain q ~stats a with
      | `Closed why -> Alcotest.fail ("unexpected close: " ^ why)
      | `Empty -> ()
      | `Blocked ->
        (* the reader frees socket-buffer space; the queue must resume
           exactly where the partial write stopped *)
        let k = Unix.read b rbuf 0 (Bytes.length rbuf) in
        Buffer.add_subbytes received rbuf 0 k;
        pump (guard - 1)
  in
  pump 1_000;
  let rec drain_rest () =
    match Unix.read b rbuf 0 (Bytes.length rbuf) with
    | k ->
      Buffer.add_subbytes received rbuf 0 k;
      if Buffer.length received < len then drain_rest ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  Unix.set_nonblock b;
  drain_rest ();
  Alcotest.(check int) "all bytes arrived" len (Buffer.length received);
  Alcotest.(check bool) "content intact" true
    (Bytes.equal (Buffer.to_bytes received) payload);
  Alcotest.(check int) "buffer recycled once" 1 !recycled;
  Alcotest.(check bool) "partial writes observed" true
    (stats.Serve.Stats.partial_writes > 0);
  Alcotest.(check bool) "write calls counted" true
    (stats.Serve.Stats.write_calls > 0);
  Unix.close a;
  Unix.close b

let test_outq_refcounted_broadcast () =
  (* One chunk fanned out to two queues: the recycle callback must fire
     exactly once, after the *last* queue lets go. *)
  let a1, b1 = sendbuf_pair () in
  let a2, b2 = sendbuf_pair () in
  let q1 = Serve.Outq.create () in
  let q2 = Serve.Outq.create () in
  let recycled = ref 0 in
  let len = 64 in
  let payload = Bytes.make len 'z' in
  let chunk =
    Serve.Outq.chunk ~shares:2 ~recycle:(fun _ -> incr recycled) payload ~len
  in
  Serve.Outq.push q1 chunk;
  Serve.Outq.push q2 chunk;
  (match Serve.Outq.drain q1 a1 with
  | `Empty -> ()
  | _ -> Alcotest.fail "q1 should drain in one write");
  Alcotest.(check int) "not recycled while q2 holds a share" 0 !recycled;
  (match Serve.Outq.drain q2 a2 with
  | `Empty -> ()
  | _ -> Alcotest.fail "q2 should drain in one write");
  Alcotest.(check int) "recycled exactly once" 1 !recycled;
  List.iter Unix.close [ a1; b1; a2; b2 ]

let test_outq_hwm_and_clear () =
  let q = Serve.Outq.create ~hwm:100 () in
  let recycled = ref 0 in
  let payload = Bytes.make 200 'q' in
  Serve.Outq.push q
    (Serve.Outq.chunk ~recycle:(fun _ -> incr recycled) payload ~len:200);
  Alcotest.(check bool) "over hwm" true (Serve.Outq.over_hwm q);
  Alcotest.(check int) "queued" 200 (Serve.Outq.queued_bytes q);
  Serve.Outq.clear q;
  Alcotest.(check bool) "empty after clear" true (Serve.Outq.is_empty q);
  Alcotest.(check int) "share released" 1 !recycled

(* --- Socket fleet ------------------------------------------------------------ *)

let fleet_workspace tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-%s-%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let fleet_config ?(n = 3) ?(t = 1) ?(window = 16)
    ?(backend = Serve.Evloop.Select) ?kill ?(respawn = false)
    ?(respawn_budget = 3) ?(respawn_backoff = 0.1) ?(wal = false)
    ?(chaos = []) ~tag instances =
  let dir = fleet_workspace tag in
  {
    Serve.Fleet.n;
    t;
    transport = `Unix dir;
    workspace = dir;
    instances;
    window;
    big_d = 0.3;
    batch = true;
    backend;
    kill;
    max_rounds = None;
    proposals = (fun i node -> (i * n) + node);
    client_timeout = None;
    verbose = false;
    respawn;
    respawn_budget;
    respawn_backoff;
    wal;
    chaos;
  }

let run_fleet ?n ?t ?window ?backend ?kill ~tag instances =
  Serve.Fleet.run (fleet_config ?n ?t ?window ?backend ?kill ~tag instances)

let test_fleet_smoke () =
  match run_fleet ~tag:"smoke" 50 with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "ok" true r.Serve.Report.ok;
    Alcotest.(check int) "completed" 50 r.Serve.Report.completed;
    Alcotest.(check int) "undecided" 0 r.Serve.Report.undecided;
    Alcotest.(check bool) "stats from every engine" true
      (List.length r.Serve.Report.stats = 3);
    Alcotest.(check bool) "batching coalesced" true
      (r.Serve.Report.total.Serve.Stats.max_batch > 1)

(* Open a raw client connection (Hello node 0) that will never read —
   the head-of-line-blocking scenario the outbound queues exist for. *)
let stalled_conn ~transport node =
  let deadline = Live.Sockets.now () +. 5.0 in
  match
    Live.Sockets.connect_retry ~deadline
      (Live.Sockets.addr_of ~transport node)
  with
  | Error e -> Alcotest.fail (Live.Sockets.error_to_string e)
  | Ok fd -> (
    match
      Live.Sockets.write_all ~deadline fd
        (Live.Frame.encode (Live.Frame.Hello { node = 0 }))
    with
    | Ok () -> fd
    | Error e -> Alcotest.fail (Live.Sockets.error_to_string e))

let storm_drive ?(reconnect = false) cfg ~on_idle =
  Serve.Client.run ~on_idle ~tick:0.05
    {
      Serve.Client.n = cfg.Serve.Fleet.n;
      transport = cfg.Serve.Fleet.transport;
      first = 0;
      instances = cfg.Serve.Fleet.instances;
      window = cfg.Serve.Fleet.window;
      proposals = cfg.Serve.Fleet.proposals;
      timeout = Serve.Fleet.default_timeout cfg;
      reconnect;
    }

let test_fleet_stalled_client_does_not_stall () =
  (* Regression: a connected client that never reads its Decide stream
     must not delay mesh progress.  With blocking sends it froze the
     whole engine for 2 s per write; with outbound queues the storm runs
     at the same speed as without the parasite. *)
  let instances = 150 in
  let baseline =
    match run_fleet ~tag:"stall-base" instances with
    | Error e -> Alcotest.fail e
    | Ok r ->
      Alcotest.(check int) "baseline completes" instances
        r.Serve.Report.completed;
      r.Serve.Report.elapsed
  in
  let cfg = fleet_config ~tag:"stall" instances in
  match
    Serve.Fleet.with_mesh cfg (fun ~on_idle ~kill:_ ->
        let stalled =
          List.init cfg.Serve.Fleet.n (fun i ->
              stalled_conn ~transport:cfg.Serve.Fleet.transport (i + 1))
        in
        let r = storm_drive cfg ~on_idle in
        List.iter Unix.close stalled;
        r)
  with
  | Error e -> Alcotest.fail e
  | Ok (outcome, _) ->
    Alcotest.(check (list int)) "everything settles" []
      outcome.Serve.Client.undecided;
    let budget = (2.0 *. baseline) +. 0.75 in
    Alcotest.(check bool)
      (Printf.sprintf "no head-of-line stall (%.3fs vs %.3fs baseline)"
         outcome.Serve.Client.elapsed baseline)
      true
      (outcome.Serve.Client.elapsed <= budget)

let test_fleet_half_open_handshake () =
  (* A connection that never says Hello parks in pending state and gets
     dropped at its deadline; in-flight instances must not notice. *)
  let cfg = fleet_config ~tag:"halfopen" 60 in
  match
    Serve.Fleet.with_mesh cfg (fun ~on_idle ~kill:_ ->
        let deadline = Live.Sockets.now () +. 5.0 in
        let half_open =
          match
            Live.Sockets.connect_retry ~deadline
              (Live.Sockets.addr_of ~transport:cfg.Serve.Fleet.transport 1)
          with
          | Error e -> Alcotest.fail (Live.Sockets.error_to_string e)
          | Ok fd -> fd
        in
        let r = storm_drive cfg ~on_idle in
        (try Unix.close half_open with Unix.Unix_error _ -> ());
        r)
  with
  | Error e -> Alcotest.fail e
  | Ok (outcome, _) ->
    Alcotest.(check (list int)) "storm unaffected" []
      outcome.Serve.Client.undecided;
    Alcotest.(check (list int)) "no node died" []
      outcome.Serve.Client.dead_nodes

let test_fleet_latency_not_tick_quantized () =
  (* The client settles on Decide arrival, not on a 50 ms poll tick: a
     small message-speed storm's p50 must resolve well below the old
     tick. *)
  match run_fleet ~tag:"latency" ~window:8 80 with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    Alcotest.(check int) "completed" 80 r.Serve.Report.completed;
    match r.Serve.Report.latency with
    | None -> Alcotest.fail "no latency measured"
    | Some l ->
      Alcotest.(check bool)
        (Printf.sprintf "p50 %.4fs below the old 50ms tick" l.Serve.Report.p50)
        true
        (l.Serve.Report.p50 < 0.05))

(* 64 concurrent client processes against one mesh: every child drives
   its own instance range, reports each instance's decided values, and
   the merged verdict map must be identical across Evloop backends. *)
let many_clients_verdicts ~backend ~tag =
  let n_clients = 64 and per_client = 3 in
  let cfg = fleet_config ~backend ~window:4 ~tag (n_clients * per_client) in
  let result =
    Serve.Fleet.with_mesh cfg (fun ~on_idle ~kill:_ ->
        (* Engines exit once their last client disconnects with nothing
           active — racy under staggered children, so an anchor client
           connection pins the fleet up until every child is reaped.  (It
           never reads: it also exercises the broadcast fan-out path.) *)
        let anchor =
          List.init cfg.Serve.Fleet.n (fun i ->
              stalled_conn ~transport:cfg.Serve.Fleet.transport (i + 1))
        in
        let children =
          List.init n_clients (fun c ->
              let r, w = Unix.pipe () in
              match Unix.fork () with
              | 0 ->
                (try
                   Unix.close r;
                   let oc = Unix.out_channel_of_descr w in
                   (match
                      Serve.Client.run
                        {
                          Serve.Client.n = cfg.Serve.Fleet.n;
                          transport = cfg.Serve.Fleet.transport;
                          first = c * per_client;
                          instances = per_client;
                          window = 4;
                          proposals = cfg.Serve.Fleet.proposals;
                          timeout = 30.0;
                          reconnect = false;
                        }
                    with
                   | Error _ -> Unix._exit 1
                   | Ok o ->
                     Array.iteri
                       (fun idx per_node ->
                         let values =
                           Array.to_list per_node
                           |> List.filter_map (Option.map fst)
                           |> List.sort_uniq compare
                         in
                         Printf.fprintf oc "%d %s\n"
                           ((c * per_client) + idx)
                           (String.concat ","
                              (List.map string_of_int values)))
                       o.Serve.Client.decisions;
                     flush oc;
                     Unix._exit 0)
                 with _ -> Unix._exit 2)
              | pid ->
                Unix.close w;
                (pid, r))
        in
        (* Reap every client while keeping the fleet pumped. *)
        let deadline = Live.Sockets.now () +. 60.0 in
        let remaining = ref (List.map fst children) in
        let failures = ref 0 in
        while !remaining <> [] && Live.Sockets.now () < deadline do
          remaining :=
            List.filter
              (fun pid ->
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ -> true
                | _, Unix.WEXITED 0 -> false
                | _, _ ->
                  incr failures;
                  false
                | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false)
              !remaining;
          on_idle ();
          if !remaining <> [] then
            Live.Sockets.sleep_until (Live.Sockets.now () +. 0.02)
        done;
        List.iter
          (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          !remaining;
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          anchor;
        if !remaining <> [] then Error "clients did not finish in 60s"
        else if !failures > 0 then
          Error (Printf.sprintf "%d client(s) failed" !failures)
        else begin
          let verdicts = Hashtbl.create 256 in
          List.iter
            (fun (_, r) ->
              let ic = Unix.in_channel_of_descr r in
              (try
                 while true do
                   match String.split_on_char ' ' (input_line ic) with
                   | [ i; vs ] ->
                     Hashtbl.replace verdicts (int_of_string i) vs
                   | _ -> ()
                 done
               with End_of_file -> ());
              close_in ic)
            children;
          Ok verdicts
        end)
  in
  match result with
  | Error e -> Alcotest.fail (tag ^ ": " ^ e)
  | Ok (verdicts, _mesh) ->
    Alcotest.(check int)
      (tag ^ ": every instance reported")
      (n_clients * per_client) (Hashtbl.length verdicts);
    Hashtbl.iter
      (fun i vs ->
        if String.contains vs ',' then
          Alcotest.fail
            (Printf.sprintf "%s: instance %d disagreement: %s" tag i vs))
      verdicts;
    verdicts

let test_fleet_many_clients_both_backends () =
  let from_select = many_clients_verdicts ~backend:Serve.Evloop.Select ~tag:"mc-select" in
  if Serve.Evloop.poll_available then begin
    let from_poll = many_clients_verdicts ~backend:Serve.Evloop.Poll ~tag:"mc-poll" in
    Alcotest.(check int) "same instance count"
      (Hashtbl.length from_select) (Hashtbl.length from_poll);
    Hashtbl.iter
      (fun i vs ->
        match Hashtbl.find_opt from_poll i with
        | Some vs' when vs = vs' -> ()
        | Some vs' ->
          Alcotest.fail
            (Printf.sprintf "instance %d: select=%s poll=%s" i vs vs')
        | None ->
          Alcotest.fail (Printf.sprintf "instance %d missing under poll" i))
      from_select
  end

let test_fleet_poll_backend_smoke () =
  if Serve.Evloop.poll_available then
    match run_fleet ~backend:Serve.Evloop.Poll ~tag:"poll-smoke" 50 with
    | Error e -> Alcotest.fail e
    | Ok r ->
      Alcotest.(check bool) "ok" true r.Serve.Report.ok;
      Alcotest.(check int) "completed" 50 r.Serve.Report.completed

let test_fleet_kill_mid_storm () =
  match
    run_fleet ~tag:"kill" ~n:5 ~t:2
      ~kill:{ Serve.Report.node = 1; after_frames = 57 }
      120
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "ok" true r.Serve.Report.ok;
    Alcotest.(check int) "survivors settle everything" 120
      r.Serve.Report.completed;
    Alcotest.(check bool) "kill realized" true
      (match List.assoc_opt 1 r.Serve.Report.stats with
      | Some _ -> true
      | None -> false)

(* --- WAL -------------------------------------------------------------------- *)

let wal_tmp tag =
  let dir = fleet_workspace ("wal-" ^ tag) in
  Serve.Wal.path ~dir ~node:1

let wal_write path entries =
  match Serve.Wal.recover ~path ~node:1 with
  | Error e -> Alcotest.fail e
  | Ok (w, _) ->
    List.iter
      (fun (e : Serve.Wal.entry) ->
        Serve.Wal.append w ~instance:e.instance ~value:e.value ~round:e.round)
      entries;
    Serve.Wal.close w

let wal_entries path =
  match Serve.Wal.load ~path ~node:1 with
  | Error e -> Alcotest.fail e
  | Ok r -> r.Serve.Wal.entries

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec is_prefix shorter longer =
  match (shorter, longer) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> x = y && is_prefix xs ys

let test_wal_roundtrip () =
  let path = wal_tmp "roundtrip" in
  (try Sys.remove path with Sys_error _ -> ());
  let entries =
    [
      { Serve.Wal.instance = 0; value = 7; round = 1 };
      { Serve.Wal.instance = 3; value = 11; round = 2 };
      { Serve.Wal.instance = 1; value = 5; round = 1 };
    ]
  in
  wal_write path entries;
  (match Serve.Wal.load ~path ~node:1 with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "nothing discarded" 0 r.Serve.Wal.discarded;
    Alcotest.(check bool) "entries survive in order" true
      (r.Serve.Wal.entries = entries));
  (* a second recover replays, then extends the same log *)
  (match Serve.Wal.recover ~path ~node:1 with
  | Error e -> Alcotest.fail e
  | Ok (w, r) ->
    Alcotest.(check bool) "replayed" true (r.Serve.Wal.entries = entries);
    Serve.Wal.append w ~instance:9 ~value:1 ~round:1;
    Alcotest.(check int) "appended counts new entries only" 1
      (Serve.Wal.appended w);
    Serve.Wal.close w);
  Alcotest.(check int) "extended" 4 (List.length (wal_entries path));
  (* the header pins the owner: another node's scan refuses the file *)
  match Serve.Wal.load ~path ~node:2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign node's WAL accepted"

let prop_wal_roundtrip =
  QCheck.Test.make ~count:50 ~name:"wal-random-roundtrip"
    QCheck.(
      small_list (triple (int_bound 1_000_000) (int_bound 0xFFFF) (int_bound 64)))
    (fun raw ->
      let entries =
        List.map
          (fun (instance, value, round) -> { Serve.Wal.instance; value; round })
          raw
      in
      let path = wal_tmp "qcheck" in
      (try Sys.remove path with Sys_error _ -> ());
      wal_write path entries;
      wal_entries path = entries)

let test_wal_truncation_sweep () =
  (* Every possible torn tail: load keeps the CRC-valid prefix, recover
     truncates the tear and appends cleanly on top of it. *)
  let path = wal_tmp "trunc" in
  (try Sys.remove path with Sys_error _ -> ());
  let entries =
    List.init 4 (fun i ->
        { Serve.Wal.instance = i; value = 100 + i; round = 1 + (i mod 2) })
  in
  wal_write path entries;
  let bytes = read_file path in
  let full = String.length bytes in
  let cut = wal_tmp "trunc-cut" in
  for len = 12 to full - 1 do
    write_file cut (String.sub bytes 0 len);
    (match Serve.Wal.load ~path:cut ~node:1 with
    | Error e -> Alcotest.fail (Printf.sprintf "load at %dB: %s" len e)
    | Ok r ->
      Alcotest.(check bool)
        (Printf.sprintf "%dB: valid prefix" len)
        true
        (is_prefix r.Serve.Wal.entries entries);
      Alcotest.(check bool)
        (Printf.sprintf "%dB: torn entry dropped" len)
        true
        (List.length r.Serve.Wal.entries < List.length entries));
    match Serve.Wal.recover ~path:cut ~node:1 with
    | Error e -> Alcotest.fail (Printf.sprintf "recover at %dB: %s" len e)
    | Ok (w, r) ->
      let kept = r.Serve.Wal.entries in
      Serve.Wal.append w ~instance:999 ~value:1 ~round:1;
      Serve.Wal.close w;
      Alcotest.(check bool)
        (Printf.sprintf "%dB: clean extension after truncation" len)
        true
        (wal_entries cut
        = kept @ [ { Serve.Wal.instance = 999; value = 1; round = 1 } ])
  done

let test_wal_byte_flip_sweep () =
  let path = wal_tmp "flip" in
  (try Sys.remove path with Sys_error _ -> ());
  let entries =
    List.init 3 (fun i -> { Serve.Wal.instance = i; value = 200 + i; round = 1 })
  in
  wal_write path entries;
  let bytes = read_file path in
  let flip = wal_tmp "flip-cut" in
  let flipped pos =
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    Bytes.to_string b
  in
  (* body flips: the CRC framing stops the scan at the damaged frame —
     what survives is a strict prefix of what was written, never a
     resurrected or altered entry *)
  for pos = 12 to String.length bytes - 1 do
    write_file flip (flipped pos);
    match Serve.Wal.load ~path:flip ~node:1 with
    | Error e -> Alcotest.fail (Printf.sprintf "body flip %d: %s" pos e)
    | Ok r ->
      Alcotest.(check bool)
        (Printf.sprintf "flip %d: prefix only" pos)
        true
        (is_prefix r.Serve.Wal.entries entries);
      Alcotest.(check bool)
        (Printf.sprintf "flip %d: damaged frame rejected" pos)
        true
        (List.length r.Serve.Wal.entries < List.length entries)
  done;
  (* header flips: the whole file is refused, and deleting it recovers a
     clean fresh join *)
  for pos = 0 to 11 do
    write_file flip (flipped pos);
    (match Serve.Wal.load ~path:flip ~node:1 with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "header flip %d accepted" pos));
    Sys.remove flip;
    match Serve.Wal.recover ~path:flip ~node:1 with
    | Error e -> Alcotest.fail e
    | Ok (w, r) ->
      Alcotest.(check bool) "fresh after rejection" true
        (r.Serve.Wal.entries = []);
      Serve.Wal.close w
  done

(* --- Chaos proxy ------------------------------------------------------------- *)

let chaos_rig ~tag actions =
  let dir = fleet_workspace ("chaos-" ^ tag) in
  let transport = `Unix dir in
  let upstream =
    match Live.Sockets.listen (Live.Sockets.addr_of ~transport 2) with
    | Error e -> Alcotest.fail (Live.Sockets.error_to_string e)
    | Ok fd -> fd
  in
  let link = { Serve.Chaosproxy.src = 1; dst = 2; actions } in
  let pid =
    match Serve.Chaosproxy.spawn ~transport ~n:2 link with
    | Error e -> Alcotest.fail e
    | Ok pid -> pid
  in
  let dial () =
    match
      Live.Sockets.connect_retry
        ~deadline:(Live.Sockets.now () +. 5.0)
        (Serve.Chaosproxy.proxy_addr ~transport ~n:2 ~src:1 ~dst:2)
    with
    | Error e -> Alcotest.fail (Live.Sockets.error_to_string e)
    | Ok fd -> fd
  in
  let accept () =
    match
      Live.Sockets.accept_timeout ~deadline:(Live.Sockets.now () +. 5.0)
        upstream
    with
    | Error e -> Alcotest.fail (Live.Sockets.error_to_string e)
    | Ok fd -> fd
  in
  let finish () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
    (try Unix.close upstream with Unix.Unix_error _ -> ());
    Serve.Chaosproxy.cleanup ~transport ~n:2 link
  in
  (dial, accept, finish)

let send fd s =
  match
    Live.Sockets.write_all ~deadline:(Live.Sockets.now () +. 5.0) fd s
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Live.Sockets.error_to_string e)

let read_exact ~deadline fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n && Live.Sockets.now () < deadline do
    match Unix.select [ fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.read fd buf !off (n - !off) with
      | 0 -> Alcotest.fail "peer closed mid-read"
      | k -> off := !off + k
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ())
  done;
  if !off < n then Alcotest.fail "timed out waiting for relayed bytes";
  Bytes.to_string buf

let wait_closed ~deadline fd =
  let buf = Bytes.create 1 in
  let rec go () =
    if Live.Sockets.now () > deadline then
      Alcotest.fail "link was not torn down"
    else
      match Unix.select [ fd ] [] [] 0.05 with
      | [], _, _ -> go ()
      | _ -> (
        match Unix.read fd buf 0 1 with
        | 0 -> ()
        | _ -> go ()
        | exception
            Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) ->
          go ())
  in
  go ()

let test_chaosproxy_generate_deterministic () =
  let gen seed =
    Serve.Chaosproxy.generate ~seed ~horizon:10.0 ~cuts:3 ~resets:1
      ~throttles:2 ~corrupts:2 ()
  in
  Alcotest.(check int) "count" 8 (List.length (gen 7));
  Alcotest.(check bool) "same seed, same script" true (gen 7 = gen 7);
  Alcotest.(check bool) "different seed, different script" true
    (gen 7 <> gen 8);
  let ats =
    List.map
      (function
        | Serve.Chaosproxy.Cut { at; _ }
        | Serve.Chaosproxy.Reset { at }
        | Serve.Chaosproxy.Throttle { at; _ }
        | Serve.Chaosproxy.Corrupt { at; _ } ->
          at)
      (gen 7)
  in
  Alcotest.(check bool) "sorted by time" true
    (ats = List.sort compare ats);
  Alcotest.(check bool) "within horizon" true
    (List.for_all (fun at -> at >= 0.0 && at < 10.0) ats)

let test_chaosproxy_corrupt () =
  let dial, accept, finish =
    chaos_rig ~tag:"corrupt"
      [ Serve.Chaosproxy.Corrupt { at = 0.0; bytes = 2 } ]
  in
  Fun.protect ~finally:finish (fun () ->
      let src = dial () in
      let dst = accept () in
      let deadline = Live.Sockets.now () +. 5.0 in
      (* src -> dst: a bit flips in each of the next two payload bytes *)
      send src "hell";
      Alcotest.(check string) "two bytes corrupted, rest intact" "idll"
        (read_exact ~deadline dst 4);
      send src "o";
      Alcotest.(check string) "budget exhausted" "o"
        (read_exact ~deadline dst 1);
      (* the reverse direction is never corrupted *)
      send dst "ok";
      Alcotest.(check string) "dst -> src clean" "ok"
        (read_exact ~deadline src 2);
      Unix.close src;
      Unix.close dst)

let test_chaosproxy_cut_delays_not_drops () =
  let dial, accept, finish =
    chaos_rig ~tag:"cut" [ Serve.Chaosproxy.Cut { at = 0.0; duration = 0.5 } ]
  in
  Fun.protect ~finally:finish (fun () ->
      let src = dial () in
      let dst = accept () in
      let sent = Live.Sockets.now () in
      send src "x";
      let got = read_exact ~deadline:(sent +. 5.0) dst 1 in
      let delay = Live.Sockets.now () -. sent in
      Alcotest.(check string) "delivered after the cut heals" "x" got;
      Alcotest.(check bool)
        (Printf.sprintf "held for the cut (%.3fs)" delay)
        true (delay >= 0.15);
      Unix.close src;
      Unix.close dst)

let test_chaosproxy_reset_fires_once () =
  let dial, accept, finish =
    chaos_rig ~tag:"reset" [ Serve.Chaosproxy.Reset { at = 0.3 } ]
  in
  Fun.protect ~finally:finish (fun () ->
      let src = dial () in
      let dst = accept () in
      let deadline = Live.Sockets.now () +. 5.0 in
      send src "a";
      Alcotest.(check string) "relays before the reset" "a"
        (read_exact ~deadline dst 1);
      (* at t=0.3 both sides of the relay die *)
      wait_closed ~deadline src;
      wait_closed ~deadline dst;
      Unix.close src;
      Unix.close dst;
      (* the proxy outlives the session, and the reset fired once: a
         re-dial relays cleanly in both directions *)
      let src = dial () in
      let dst = accept () in
      let deadline = Live.Sockets.now () +. 5.0 in
      send src "b";
      Alcotest.(check string) "rejoined link forwards" "b"
        (read_exact ~deadline dst 1);
      send dst "c";
      Alcotest.(check string) "and answers" "c" (read_exact ~deadline src 1);
      Unix.close src;
      Unix.close dst)

let test_chaosproxy_throttle () =
  let dial, accept, finish =
    chaos_rig ~tag:"throttle"
      [
        Serve.Chaosproxy.Throttle
          { at = 0.0; duration = 5.0; bytes_per_sec = 1000 };
      ]
  in
  Fun.protect ~finally:finish (fun () ->
      let src = dial () in
      let dst = accept () in
      let sent = Live.Sockets.now () in
      send src (String.make 500 'z');
      let got = read_exact ~deadline:(sent +. 5.0) dst 500 in
      let took = Live.Sockets.now () -. sent in
      Alcotest.(check int) "all bytes delivered" 500 (String.length got);
      Alcotest.(check bool)
        (Printf.sprintf "rate-limited (%.3fs for 500B at 1000B/s)" took)
        true (took >= 0.2);
      Unix.close src;
      Unix.close dst)

(* --- Crash-recovery: respawn + WAL replay + client reconnect ----------------- *)

let test_fleet_respawn_recovers () =
  (* The full recovery path: a mid-storm SIGKILL victim is respawned by
     the fleet, replays its WAL, catches up over the mesh, and the
     reconnecting client fills its verdict column back in — nothing
     undecided, nobody left dead, and every instance still agrees. *)
  let cfg =
    fleet_config ~tag:"respawn" ~n:3 ~t:1 ~respawn:true
      ~kill:{ Serve.Report.node = 1; after_frames = 57 }
      120
  in
  match
    Serve.Fleet.with_mesh cfg (fun ~on_idle ~kill:_ ->
        storm_drive ~reconnect:true cfg ~on_idle)
  with
  | Error e -> Alcotest.fail e
  | Ok (outcome, mesh) ->
    Alcotest.(check (list int)) "everything settles" []
      outcome.Serve.Client.undecided;
    Alcotest.(check (list int)) "the victim came back" []
      outcome.Serve.Client.dead_nodes;
    Alcotest.(check bool) "client re-dialed it" true
      (outcome.Serve.Client.reconnects >= 1);
    Alcotest.(check bool) "fleet respawned it" true
      (List.mem_assoc 1 mesh.Serve.Fleet.respawned);
    Array.iteri
      (fun idx per_node ->
        let values =
          Array.to_list per_node
          |> List.filter_map (Option.map fst)
          |> List.sort_uniq compare
        in
        if List.length values <> 1 then
          Alcotest.fail
            (Printf.sprintf "instance %d: %d distinct verdicts" idx
               (List.length values)))
      outcome.Serve.Client.decisions

let test_fleet_chaos_safe_cut () =
  (* A cut shorter than big_d on one mesh link is delay, not failure —
     TCP backpressure holds the bytes and the round deadlines absorb the
     stall.  The storm must stay clean end to end. *)
  let chaos =
    [
      {
        Serve.Chaosproxy.src = 1;
        dst = 2;
        actions = [ Serve.Chaosproxy.Cut { at = 0.5; duration = 0.08 } ];
      };
    ]
  in
  let cfg = fleet_config ~tag:"chaos-cut" ~chaos 60 in
  match Serve.Fleet.run cfg with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "ok" true r.Serve.Report.ok;
    Alcotest.(check int) "completed" 60 r.Serve.Report.completed;
    Alcotest.(check int) "undecided" 0 r.Serve.Report.undecided

let () =
  Alcotest.run "serve"
    [
      ( "slab",
        [
          Alcotest.test_case "basics" `Quick test_slab_basics;
          Alcotest.test_case "reuse-bounded" `Quick test_slab_reuse_bounded;
          Alcotest.test_case "iter-order" `Quick test_slab_iter_order;
        ] );
      ("bitvec", [ Alcotest.test_case "grow-set-mem" `Quick test_bitvec ]);
      ( "mux",
        [
          Alcotest.test_case "early-frames" `Quick test_mux_early_frames;
          Alcotest.test_case "deadline-fallback" `Quick test_mux_deadline_fallback;
          Alcotest.test_case "resubmit-served-from-log" `Quick
            test_mux_resubmit_served_from_log;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "storm-decides" `Quick test_loopback_storm_decides;
          Alcotest.test_case "deterministic" `Quick test_loopback_deterministic;
          Alcotest.test_case "batching-reduces-writes" `Quick
            test_loopback_batching_reduces_writes;
          Alcotest.test_case "kill-mid-storm" `Quick test_loopback_kill_mid_storm;
          Alcotest.test_case "kill-realized-phases" `Quick
            test_loopback_kill_realized_phases;
          Alcotest.test_case "kill-budget-unreached" `Quick
            test_loopback_no_kill_when_budget_unreached;
        ] );
      ( "evloop",
        [
          Alcotest.test_case "select-backend" `Quick
            (test_evloop_backend Serve.Evloop.Select);
          Alcotest.test_case "poll-backend" `Quick
            (test_evloop_backend Serve.Evloop.Poll);
          QCheck_alcotest.to_alcotest prop_backends_agree;
        ] );
      ( "outq",
        [
          Alcotest.test_case "partial-write-resume" `Quick
            test_outq_partial_write_resume;
          Alcotest.test_case "refcounted-broadcast" `Quick
            test_outq_refcounted_broadcast;
          Alcotest.test_case "hwm-and-clear" `Quick test_outq_hwm_and_clear;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          QCheck_alcotest.to_alcotest prop_wal_roundtrip;
          Alcotest.test_case "truncation-sweep" `Quick
            test_wal_truncation_sweep;
          Alcotest.test_case "byte-flip-sweep" `Quick test_wal_byte_flip_sweep;
        ] );
      ( "chaosproxy",
        [
          Alcotest.test_case "generate-deterministic" `Quick
            test_chaosproxy_generate_deterministic;
          Alcotest.test_case "corrupt-flips-bytes" `Slow test_chaosproxy_corrupt;
          Alcotest.test_case "cut-delays-not-drops" `Slow
            test_chaosproxy_cut_delays_not_drops;
          Alcotest.test_case "reset-fires-once" `Slow
            test_chaosproxy_reset_fires_once;
          Alcotest.test_case "throttle-rate-limits" `Slow
            test_chaosproxy_throttle;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "unix-smoke" `Slow test_fleet_smoke;
          Alcotest.test_case "unix-poll-smoke" `Slow
            test_fleet_poll_backend_smoke;
          Alcotest.test_case "unix-kill-mid-storm" `Slow
            test_fleet_kill_mid_storm;
          Alcotest.test_case "stalled-client-no-stall" `Slow
            test_fleet_stalled_client_does_not_stall;
          Alcotest.test_case "half-open-handshake" `Slow
            test_fleet_half_open_handshake;
          Alcotest.test_case "latency-not-tick-quantized" `Slow
            test_fleet_latency_not_tick_quantized;
          Alcotest.test_case "sixty-four-clients-both-backends" `Slow
            test_fleet_many_clients_both_backends;
          Alcotest.test_case "respawn-recovers" `Slow
            test_fleet_respawn_recovers;
          Alcotest.test_case "chaos-safe-cut" `Slow test_fleet_chaos_safe_cut;
        ] );
    ]
