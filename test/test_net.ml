(* Tests for the net library (fault plans, synchrony violations) and the
   fault-masking LAN transport built on top of it: fault plans are
   deterministic and transparent at zero rates, the retransmitting transport
   masks sub-budget faults decision-for-decision, and over-budget faults end
   in a structured violation report — never a silent wrong decision. *)

open Model
open Helpers

let p = Pid.of_int
let big_d = 10.0
let delta = 1.0

(* --- Fault_plan ---------------------------------------------------------- *)

let floats = Alcotest.(list (float 1e-9))

let test_reliable_identity () =
  let plan = Net.Fault_plan.reliable in
  Alcotest.(check bool) "is_reliable" true (Net.Fault_plan.is_reliable plan);
  Alcotest.check floats "passes the latency through" [ 3.25 ]
    (Net.Fault_plan.deliveries plan ~src:(p 1) ~dst:(p 2) ~at:0.0 ~latency:3.25);
  Alcotest.(check int) "no faults" 0 (Net.Fault_plan.faults_injected plan);
  Alcotest.(check bool) "no stats" true (Net.Fault_plan.stats plan = None)

let test_zero_rate_plan_is_transparent () =
  (* All-zero rates: every message delivered exactly once at its drawn
     latency, zero faults injected — the plan is an identity transform. *)
  let plan = Net.Fault_plan.create ~seed:5L () in
  Alcotest.(check bool) "not the reliable fast path" false
    (Net.Fault_plan.is_reliable plan);
  for i = 1 to 50 do
    let latency = 0.5 +. (0.1 *. float_of_int i) in
    Alcotest.check floats "delivered once, unchanged" [ latency ]
      (Net.Fault_plan.deliveries plan ~src:(p 1) ~dst:(p 2)
         ~at:(float_of_int i) ~latency)
  done;
  Alcotest.(check int) "no faults injected" 0
    (Net.Fault_plan.faults_injected plan)

let test_drop_all () =
  let plan = Net.Fault_plan.create ~drop:1.0 ~seed:5L () in
  for i = 1 to 10 do
    Alcotest.check floats "lost" []
      (Net.Fault_plan.deliveries plan ~src:(p 1) ~dst:(p 2)
         ~at:(float_of_int i) ~latency:1.0)
  done;
  match Net.Fault_plan.stats plan with
  | None -> Alcotest.fail "faulty plan must expose stats"
  | Some s ->
    Alcotest.(check int) "messages" 10 s.Net.Fault_plan.messages;
    Alcotest.(check int) "dropped" 10 s.Net.Fault_plan.dropped;
    Alcotest.(check int) "faults" 10 (Net.Fault_plan.faults_injected plan)

let test_duplicate_all () =
  let plan = Net.Fault_plan.create ~duplicate:1.0 ~seed:5L () in
  Alcotest.check floats "two copies at the drawn latency" [ 2.0; 2.0 ]
    (Net.Fault_plan.deliveries plan ~src:(p 1) ~dst:(p 2) ~at:0.0 ~latency:2.0)

let test_determinism () =
  let profile seed =
    Net.Fault_plan.create ~drop:0.3 ~duplicate:0.2 ~jitter:0.5
      ~jitter_spread:2.0 ~spike:0.1 ~spike_factor:3.0 ~seed ()
  in
  let feed plan =
    List.init 100 (fun i ->
        Net.Fault_plan.deliveries plan
          ~src:(p ((i mod 4) + 1))
          ~dst:(p (((i + 1) mod 4) + 1))
          ~at:(float_of_int i)
          ~latency:(1.0 +. (0.01 *. float_of_int i)))
  in
  Alcotest.(check bool) "equal seeds replay the same fault pattern" true
    (feed (profile 42L) = feed (profile 42L));
  Alcotest.(check bool) "different seeds give a different pattern" true
    (feed (profile 42L) <> feed (profile 43L))

let test_cut_matching () =
  let plan =
    Net.Fault_plan.create
      ~cuts:
        [ Net.Fault_plan.cut ~src:(p 1) ~dst:(p 3) ~from_time:10.0 ~until:20.0 () ]
      ~seed:5L ()
  in
  let d ~src ~dst ~at =
    Net.Fault_plan.deliveries plan ~src ~dst ~at ~latency:1.0
  in
  Alcotest.check floats "inside the window, matching link: lost" []
    (d ~src:(p 1) ~dst:(p 3) ~at:15.0);
  Alcotest.check floats "before the window: delivered" [ 1.0 ]
    (d ~src:(p 1) ~dst:(p 3) ~at:5.0);
  Alcotest.check floats "after the window: delivered" [ 1.0 ]
    (d ~src:(p 1) ~dst:(p 3) ~at:25.0);
  Alcotest.check floats "other destination: delivered" [ 1.0 ]
    (d ~src:(p 1) ~dst:(p 2) ~at:15.0);
  Alcotest.check floats "other sender: delivered" [ 1.0 ]
    (d ~src:(p 2) ~dst:(p 3) ~at:15.0);
  (* A wildcard cut isolates the receiver from every sender. *)
  let iso =
    Adversary.Net_faults.receiver_isolation ~dst:(p 4) ~seed:5L ()
  in
  Alcotest.check floats "wildcard src matches all" []
    (Net.Fault_plan.deliveries iso ~src:(p 2) ~dst:(p 4) ~at:0.0 ~latency:1.0);
  Alcotest.check floats "other receivers untouched" [ 1.0 ]
    (Net.Fault_plan.deliveries iso ~src:(p 2) ~dst:(p 1) ~at:0.0 ~latency:1.0)

(* --- Record / replay ------------------------------------------------------ *)

let feed_sequence plan =
  List.init 60 (fun i ->
      Net.Fault_plan.deliveries plan
        ~src:(p ((i mod 4) + 1))
        ~dst:(p (((i + 1) mod 4) + 1))
        ~at:(float_of_int i)
        ~latency:(1.0 +. (0.01 *. float_of_int i)))

let test_recording_is_transparent () =
  let make () =
    Net.Fault_plan.create ~drop:0.3 ~duplicate:0.2 ~jitter:0.4
      ~jitter_spread:2.0 ~seed:42L ()
  in
  let plain = feed_sequence (make ()) in
  let tapped = Net.Fault_plan.recording (make ()) in
  Alcotest.(check bool) "recording does not change deliveries" true
    (feed_sequence tapped = plain);
  match Net.Fault_plan.recorded tapped with
  | None -> Alcotest.fail "recording plan must expose its log"
  | Some actions ->
    Alcotest.(check int) "one action per message" 60 (Array.length actions)

let test_scripted_replays_recording () =
  let faulty =
    Net.Fault_plan.recording
      (Net.Fault_plan.create ~drop:0.3 ~duplicate:0.2 ~jitter:0.4
         ~jitter_spread:2.0 ~spike:0.1 ~spike_factor:3.0 ~seed:42L ())
  in
  let original = feed_sequence faulty in
  let actions = Option.get (Net.Fault_plan.recorded faulty) in
  let replayed = feed_sequence (Net.Fault_plan.scripted actions) in
  Alcotest.(check bool) "scripted replay is byte-identical" true
    (replayed = original);
  Alcotest.(check bool) "at least one fault in the fixture" true
    (Net.Fault_plan.faults_injected faulty > 0)

let test_scripted_past_end_delivers () =
  let plan = Net.Fault_plan.scripted [| Net.Fault_plan.Lose |] in
  Alcotest.check floats "scripted loss" []
    (Net.Fault_plan.deliveries plan ~src:(p 1) ~dst:(p 2) ~at:0.0 ~latency:1.5);
  Alcotest.check floats "beyond the script the channel heals" [ 2.5 ]
    (Net.Fault_plan.deliveries plan ~src:(p 1) ~dst:(p 2) ~at:1.0 ~latency:2.5);
  Alcotest.(check int) "one fault counted" 1
    (Net.Fault_plan.faults_injected plan);
  Alcotest.(check bool) "script is exposed" true
    (Net.Fault_plan.script plan = Some [| Net.Fault_plan.Lose |])

let test_plan_validation () =
  let invalid name f =
    Alcotest.(check bool) name true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  invalid "drop > 1" (fun () -> Net.Fault_plan.create ~drop:1.5 ~seed:1L ());
  invalid "negative jitter" (fun () ->
      Net.Fault_plan.create ~jitter:(-0.1) ~seed:1L ());
  invalid "spike_factor <= 1" (fun () ->
      Net.Fault_plan.create ~spike:0.1 ~spike_factor:1.0 ~seed:1L ());
  invalid "cut window backwards" (fun () ->
      Net.Fault_plan.cut ~from_time:5.0 ~until:1.0 ())

(* --- Masked transport on the timed engine -------------------------------- *)

module Masked =
  Lan.Masked.Make
    (Core.Rwwc)
    (struct
      let big_d = big_d
      let delta = delta
      let retry_budget = 2
    end)

module Runner = Timed_sim.Timed_engine.Make (Masked)

let n = 5

let run_masked ?(instrument = Obs.Instrument.null) ~faults () =
  Runner.run
    (Timed_sim.Timed_engine.config
       ~latency:(Timed_sim.Timed_engine.Uniform { lo = 0.5; hi = big_d /. 2.0 })
       ~faults ~instrument ~seed:11L ~n ~t:(n - 2)
       ~proposals:(Sync_sim.Engine.distinct_proposals n) ())

let abstract =
  lazy
    (let res =
       run_rwwc ~n ~t:(n - 2) ~schedule:Schedule.empty
         ~proposals:(Sync_sim.Engine.distinct_proposals n) ()
     in
     List.map
       (fun (pid, v, r) -> (Pid.to_int pid, v, r))
       (Sync_sim.Run_result.decisions res))

let masked_decisions res =
  List.map
    (fun (pid, v, at) -> (Pid.to_int pid, v, Masked.round_of_time at))
    (Timed_sim.Timed_engine.decisions res)

let test_masked_zero_fault_matches_abstract () =
  let res = run_masked ~faults:(Net.Fault_plan.create ~seed:5L ()) () in
  Alcotest.(check bool) "no violations" false
    (Timed_sim.Timed_engine.aborted res);
  Alcotest.(check (list (triple int int int)))
    "decisions match the abstract engine" (Lazy.force abstract)
    (masked_decisions res)

let test_duplication_masked_without_budget () =
  (* Sequence numbers deduplicate: a 100% duplication rate is invisible even
     with retry_budget = 0, and every payload is delivered twice. *)
  let module M0 =
    Lan.Masked.Make
      (Core.Rwwc)
      (struct
        let big_d = big_d
        let delta = delta
        let retry_budget = 0
      end)
  in
  let module R0 = Timed_sim.Timed_engine.Make (M0) in
  let sent = ref 0 and delivered = ref 0 in
  let counter =
    Obs.Instrument.of_fn (function
      | Timed_sim.Timed_engine.Sent _ -> incr sent
      | Timed_sim.Timed_engine.Delivered _ -> incr delivered
      | _ -> ())
  in
  let res =
    R0.run
      (Timed_sim.Timed_engine.config
         ~latency:(Timed_sim.Timed_engine.Uniform { lo = 0.5; hi = big_d /. 2.0 })
         ~faults:(Net.Fault_plan.create ~duplicate:1.0 ~seed:5L ())
         ~instrument:counter ~seed:11L ~n ~t:(n - 2)
         ~proposals:(Sync_sim.Engine.distinct_proposals n) ())
  in
  Alcotest.(check bool) "no violations" false
    (Timed_sim.Timed_engine.aborted res);
  Alcotest.(check (list (triple int int int)))
    "decisions match the abstract engine" (Lazy.force abstract)
    (List.map
       (fun (pid, v, at) -> (Pid.to_int pid, v, M0.round_of_time at))
       (Timed_sim.Timed_engine.decisions res));
  Alcotest.(check int) "every message delivered twice" (2 * !sent) !delivered

let test_link_cut_detected () =
  let dropped = ref 0 and violated = ref 0 in
  let counter =
    Obs.Instrument.of_fn (function
      | Timed_sim.Timed_engine.Dropped _ -> incr dropped
      | Timed_sim.Timed_engine.Violated _ -> incr violated
      | _ -> ())
  in
  let res =
    run_masked ~instrument:counter
      ~faults:
        (Adversary.Net_faults.targeted_link_cut ~src:(p 1) ~dst:(p 3) ~seed:5L ())
      ()
  in
  Alcotest.(check bool) "aborted" true (Timed_sim.Timed_engine.aborted res);
  (match res.Timed_sim.Timed_engine.violations with
  | [ v ] ->
    Alcotest.(check int) "round" 1 v.Net.Synchrony_violation.round;
    Alcotest.(check int) "src" 1 (Pid.to_int v.Net.Synchrony_violation.src);
    Alcotest.(check int) "dst" 3 (Pid.to_int v.Net.Synchrony_violation.dst);
    (match v.Net.Synchrony_violation.kind with
    | Net.Synchrony_violation.Retry_exhausted { attempts } ->
      (* budget 2: the original send plus two retries, all cut. *)
      Alcotest.(check int) "attempts" 3 attempts
    | Net.Synchrony_violation.Late_arrival _ ->
      Alcotest.fail "expected Retry_exhausted")
  | l -> Alcotest.failf "expected exactly one violation, got %d" (List.length l));
  Alcotest.(check bool) "cut messages observed as drops" true (!dropped >= 3);
  Alcotest.(check int) "violation event emitted" 1 !violated;
  Alcotest.(check bool) "nobody decided wrongly" true
    (List.for_all
       (fun d -> List.mem d (Lazy.force abstract))
       (masked_decisions res))

let prop_never_silently_wrong =
  qtest ~count:60 "chaos: masked or detected, never silently wrong"
    QCheck2.Gen.(
      let* drop = float_range 0.0 0.4 in
      let* budget = int_range 0 3 in
      let* seed = int_range 1 100_000 in
      return (drop, budget, seed))
    (fun (drop, budget, seed) ->
      let faults =
        Adversary.Net_faults.network_storm ~drop ~duplicate:(drop /. 2.0)
          ~seed:(Int64.of_int (seed + 1))
          ()
      in
      match
        Harness.Exp_chaos.run_one ~budget ~faults ~seed:(Int64.of_int seed) ()
      with
      | Harness.Exp_chaos.Masked, _ | Harness.Exp_chaos.Detected _, _ -> true
      | Harness.Exp_chaos.Wrong why, _ ->
        QCheck2.Test.fail_reportf
          "silently wrong (drop=%.2f budget=%d seed=%d): %s" drop budget seed
          why)

(* --- Synchrony_violation formatting -------------------------------------- *)

let test_violation_report_fields () =
  let v =
    Net.Synchrony_violation.late_arrival ~round:2 ~src:(p 1) ~dst:(p 4)
      ~at:33.25 ~observed:27.5 ~assumed:20.0
  in
  let s = Net.Synchrony_violation.to_string v in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report mentions " ^ needle) true
        (contains_substring s needle))
    [ "round 2"; "p1->p4"; "t=33.250"; "27.5"; "20.0" ]

let () =
  Alcotest.run "net"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "reliable" `Quick test_reliable_identity;
          Alcotest.test_case "zero-rate" `Quick test_zero_rate_plan_is_transparent;
          Alcotest.test_case "drop-all" `Quick test_drop_all;
          Alcotest.test_case "duplicate-all" `Quick test_duplicate_all;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "cuts" `Quick test_cut_matching;
          Alcotest.test_case "recording-transparent" `Quick
            test_recording_is_transparent;
          Alcotest.test_case "scripted-replay" `Quick
            test_scripted_replays_recording;
          Alcotest.test_case "scripted-past-end" `Quick
            test_scripted_past_end_delivers;
          Alcotest.test_case "validation" `Quick test_plan_validation;
        ] );
      ( "masked-transport",
        [
          Alcotest.test_case "zero-fault-equivalence" `Quick
            test_masked_zero_fault_matches_abstract;
          Alcotest.test_case "dedup-without-budget" `Quick
            test_duplication_masked_without_budget;
          Alcotest.test_case "link-cut-detected" `Quick test_link_cut_detected;
          prop_never_silently_wrong;
        ] );
      ( "violation",
        [ Alcotest.test_case "report" `Quick test_violation_report_fields ] );
    ]
