(* Tests for the adversary library: combinatorics, named strategies and the
   exhaustive enumerator. *)

open Model

let test_subsets_count_and_distinct () =
  let s = List.of_seq (Adversary.Combinatorics.subsets [ 1; 2; 3; 4 ]) in
  Alcotest.(check int) "2^4 subsets" 16 (List.length s);
  Alcotest.(check int) "all distinct" 16
    (List.length (List.sort_uniq compare s));
  List.iter
    (fun sub ->
      Alcotest.(check bool) "sorted (order preserved)" true
        (List.sort compare sub = sub))
    s

let test_choose () =
  let s = List.of_seq (Adversary.Combinatorics.choose 2 [ 1; 2; 3; 4 ]) in
  Alcotest.(check int) "C(4,2)" 6 (List.length s);
  List.iter (fun sub -> Alcotest.(check int) "size 2" 2 (List.length sub)) s

let test_choose_degenerate () =
  Alcotest.(check int) "C(n,0)" 1
    (List.length (List.of_seq (Adversary.Combinatorics.choose 0 [ 1; 2 ])));
  Alcotest.(check int) "C(2,3)" 0
    (List.length (List.of_seq (Adversary.Combinatorics.choose 3 [ 1; 2 ])))

let test_product_and_sequence () =
  let p =
    List.of_seq
      (Adversary.Combinatorics.product (List.to_seq [ 1; 2 ]) (List.to_seq [ 10; 20; 30 ]))
  in
  Alcotest.(check int) "2x3" 6 (List.length p);
  let s =
    List.of_seq
      (Adversary.Combinatorics.sequence [ List.to_seq [ 1; 2 ]; List.to_seq [ 3 ]; List.to_seq [ 4; 5 ] ])
  in
  Alcotest.(check (list (list int))) "sequence"
    [ [ 1; 3; 4 ]; [ 1; 3; 5 ]; [ 2; 3; 4 ]; [ 2; 3; 5 ] ]
    s

let test_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ]
    (List.of_seq (Adversary.Combinatorics.range 2 4));
  Alcotest.(check (list int)) "empty" [] (List.of_seq (Adversary.Combinatorics.range 3 2));
  Alcotest.(check (list int)) "upto" [ 0; 1; 2 ]
    (List.of_seq (Adversary.Combinatorics.upto 2))

let test_silent_killer_shape () =
  let s = Adversary.Strategies.coordinator_killer ~n:5 ~f:3 ~style:Adversary.Strategies.Silent in
  Alcotest.(check int) "f" 3 (Schedule.f s);
  List.iter
    (fun i ->
      match Schedule.find s (Pid.of_int i) with
      | Some ev ->
        Alcotest.(check int) "crashes in own round" i ev.Crash.round;
        Alcotest.(check bool) "before send" true
          (Crash.equal_point ev.Crash.point Crash.Before_send)
      | None -> Alcotest.fail "missing victim")
    [ 1; 2; 3 ]

let test_greedy_killer_shape () =
  let n = 6 and f = 2 in
  let s = Adversary.Strategies.coordinator_killer ~n ~f ~style:Adversary.Strategies.Greedy in
  List.iter
    (fun i ->
      match Schedule.find s (Pid.of_int i) with
      | Some ev ->
        Alcotest.(check bool) "after-data with commit down to p_{f+2}" true
          (Crash.equal_point ev.Crash.point (Crash.After_data (n - f - 1)))
      | None -> Alcotest.fail "missing victim")
    [ 1; 2 ]

let test_killer_f0_is_empty () =
  Alcotest.(check int) "f=0 empty" 0
    (Schedule.f (Adversary.Strategies.coordinator_killer ~n:4 ~f:0 ~style:Adversary.Strategies.Silent))

let test_random_schedule_valid () =
  let rng = Prng.Rng.of_int 33 in
  for _ = 1 to 200 do
    let n = 2 + Prng.Rng.int rng 7 in
    let t = 1 + Prng.Rng.int rng (n - 1) in
    let f = Prng.Rng.int rng (t + 1) in
    let s =
      Adversary.Strategies.random ~rng ~model:Model_kind.Extended ~n ~f
        ~max_round:(t + 1)
    in
    Alcotest.(check int) "f victims" f (Schedule.f s);
    match Schedule.validate ~model:Model_kind.Extended ~n ~t s with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done

let test_random_classic_has_no_after_data () =
  let rng = Prng.Rng.of_int 34 in
  for _ = 1 to 200 do
    let s =
      Adversary.Strategies.random ~rng ~model:Model_kind.Classic ~n:5 ~f:3
        ~max_round:3
    in
    List.iter
      (fun (_, ev) ->
        match ev.Crash.point with
        | Crash.After_data _ -> Alcotest.fail "After_data under classic"
        | Crash.Before_send | Crash.During_data _ | Crash.After_send -> ())
      (Schedule.bindings s)
  done

(* Property: whatever the parameters, the random strategies only emit
   schedules that are legal for their model kind — every crash round in
   [1 .. max_round], no [After_data] point under Classic, victim counts
   within budget, and [Schedule.validate] accepts the result. *)
let prop_random_strategies_legal =
  Helpers.qtest ~count:300 "random/random_f schedules are legal per model"
    QCheck2.Gen.(
      let* model = oneofl [ Model_kind.Classic; Model_kind.Extended ] in
      let* n = int_range 2 9 in
      let* t = int_range 1 (n - 1) in
      let* f = int_range 0 t in
      let* seed = int_range 0 1_000_000 in
      return (model, n, t, f, seed))
    (fun (model, n, t, f, seed) ->
      let rng = Prng.Rng.of_int seed in
      let max_round = t + 1 in
      let check what s =
        (match Schedule.validate ~model ~n ~t s with
        | Ok () -> ()
        | Error e -> QCheck2.Test.fail_reportf "%s: invalid schedule: %s" what e);
        List.iter
          (fun (_, ev) ->
            if ev.Crash.round < 1 || ev.Crash.round > max_round then
              QCheck2.Test.fail_reportf "%s: crash round %d outside 1..%d" what
                ev.Crash.round max_round;
            match (model, ev.Crash.point) with
            | Model_kind.Classic, Crash.After_data _ ->
              QCheck2.Test.fail_reportf "%s: After_data under classic" what
            | _, _ -> ())
          (Schedule.bindings s)
      in
      let s = Adversary.Strategies.random ~rng ~model ~n ~f ~max_round in
      check "random" s;
      if Schedule.f s <> f then
        QCheck2.Test.fail_reportf "random: %d victims, asked for %d"
          (Schedule.f s) f;
      let sf = Adversary.Strategies.random_f ~rng ~model ~n ~t ~max_round in
      check "random_f" sf;
      if Schedule.f sf > t then
        QCheck2.Test.fail_reportf "random_f: %d victims exceeds t=%d"
          (Schedule.f sf) t;
      true)

let test_enumerate_points_count () =
  (* Extended, n=3: Before + 2^2 subsets + 3 prefixes + After = 9. *)
  Alcotest.(check int) "extended points" 9
    (Adversary.Enumerate.count
       (Adversary.Enumerate.points ~model:Model_kind.Extended ~n:3
          ~victim:(Pid.of_int 1)));
  (* Classic, n=3: Before + 4 subsets + After = 6. *)
  Alcotest.(check int) "classic points" 6
    (Adversary.Enumerate.count
       (Adversary.Enumerate.points ~model:Model_kind.Classic ~n:3
          ~victim:(Pid.of_int 1)))

let test_enumerate_schedules_count () =
  (* n=3 extended, max_f=1, max_round=2: 1 + 3 victims * 2 rounds * 9 points. *)
  Alcotest.(check int) "schedule count" (1 + (3 * 2 * 9))
    (Adversary.Enumerate.count
       (Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n:3 ~max_f:1
          ~max_round:2))

let test_enumerate_all_valid_and_distinct () =
  let seen = Hashtbl.create 64 in
  Seq.iter
    (fun s ->
      (match Schedule.validate ~model:Model_kind.Extended ~n:3 ~t:2 s with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let key = Schedule.to_string s in
      if Hashtbl.mem seen key then Alcotest.fail ("duplicate: " ^ key);
      Hashtbl.add seen key ())
    (Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n:3 ~max_f:2
       ~max_round:2)

let test_space_size_matches_enumeration () =
  List.iter
    (fun (model, n, max_f, max_round) ->
      Alcotest.(check int)
        (Printf.sprintf "n=%d max_f=%d max_round=%d" n max_f max_round)
        (Adversary.Enumerate.count
           (Adversary.Enumerate.schedules ~model ~n ~max_f ~max_round))
        (Adversary.Enumerate.space_size ~model ~n ~max_f ~max_round))
    [
      (Model_kind.Extended, 3, 1, 2);
      (Model_kind.Extended, 3, 2, 2);
      (Model_kind.Extended, 4, 2, 3);
      (Model_kind.Classic, 3, 2, 2);
      (Model_kind.Classic, 4, 2, 3);
    ]

(* Sharding must partition the stream into residue classes: shard k holds
   exactly the elements at indices congruent to k, so the shards are
   disjoint and their union is the whole space. *)
let test_shard_partitions () =
  let space () =
    Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n:3 ~max_f:2
      ~max_round:2
  in
  let all = List.map Schedule.to_string (List.of_seq (space ())) in
  List.iter
    (fun shards ->
      List.iteri
        (fun k expected_at_k ->
          ignore expected_at_k;
          let part =
            List.map Schedule.to_string
              (List.of_seq (Adversary.Enumerate.shard ~shards ~shard:k (space ())))
          in
          let expected =
            List.filteri (fun i _ -> i mod shards = k) all
          in
          Alcotest.(check (list string))
            (Printf.sprintf "shards=%d shard=%d" shards k)
            expected part)
        (List.init shards Fun.id))
    [ 1; 2; 3; 7 ]

let test_shard_validates () =
  let space = Seq.ints 0 in
  Alcotest.(check bool) "bad shard count" true
    (try
       let (_ : int Seq.t) = Adversary.Enumerate.shard ~shards:0 ~shard:0 space in
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "shard out of range" true
    (try
       let (_ : int Seq.t) = Adversary.Enumerate.shard ~shards:4 ~shard:4 space in
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "adversary"
    [
      ( "combinatorics",
        [
          Alcotest.test_case "subsets" `Quick test_subsets_count_and_distinct;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "choose-degenerate" `Quick test_choose_degenerate;
          Alcotest.test_case "product-sequence" `Quick test_product_and_sequence;
          Alcotest.test_case "range" `Quick test_range;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "silent-killer" `Quick test_silent_killer_shape;
          Alcotest.test_case "greedy-killer" `Quick test_greedy_killer_shape;
          Alcotest.test_case "killer-f0" `Quick test_killer_f0_is_empty;
          Alcotest.test_case "random-valid" `Quick test_random_schedule_valid;
          Alcotest.test_case "random-classic" `Quick test_random_classic_has_no_after_data;
          prop_random_strategies_legal;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "points" `Quick test_enumerate_points_count;
          Alcotest.test_case "schedules" `Quick test_enumerate_schedules_count;
          Alcotest.test_case "valid-distinct" `Quick test_enumerate_all_valid_and_distinct;
          Alcotest.test_case "space-size" `Quick test_space_size_matches_enumeration;
          Alcotest.test_case "shard-partition" `Quick test_shard_partitions;
          Alcotest.test_case "shard-validate" `Quick test_shard_validates;
        ] );
    ]
