(* Tests for the observer layer: instrument combinators, the counting /
   trace / metrics sinks (cross-checked against the engine's semantic
   counters), JSON export, and the online invariant checker — including the
   negative test where it must abort a run of a deliberately broken
   algorithm variant. *)

open Model
open Sync_sim
open Helpers

let silent ~n ~f =
  Adversary.Strategies.coordinator_killer ~n ~f
    ~style:Adversary.Strategies.Silent

let greedy ~n ~f =
  Adversary.Strategies.coordinator_killer ~n ~f
    ~style:Adversary.Strategies.Greedy

(* --- Instrument combinators --------------------------------------------- *)

let test_null_is_null () =
  Alcotest.(check bool) "null" true (Obs.Instrument.is_null Obs.Instrument.null);
  Alcotest.(check bool) "of_fn not null" false
    (Obs.Instrument.is_null (Obs.Instrument.of_fn ignore));
  Alcotest.(check bool) "compose null null" true
    (Obs.Instrument.is_null
       (Obs.Instrument.compose Obs.Instrument.null Obs.Instrument.null));
  Alcotest.(check bool) "filter null" true
    (Obs.Instrument.is_null
       (Obs.Instrument.filter (fun _ -> true) Obs.Instrument.null));
  Alcotest.(check bool) "compose_all []" true
    (Obs.Instrument.is_null (Obs.Instrument.compose_all []));
  Alcotest.(check bool) "compose_all [null;null]" true
    (Obs.Instrument.is_null
       (Obs.Instrument.compose_all [ Obs.Instrument.null; Obs.Instrument.null ]))

let test_compose_order_and_fanout () =
  let log = ref [] in
  let tag name = Obs.Instrument.of_fn (fun x -> log := (name, x) :: !log) in
  let inst =
    Obs.Instrument.compose_all
      [ tag "a"; Obs.Instrument.null; tag "b"; tag "c" ]
  in
  Obs.Instrument.emit inst 1;
  Obs.Instrument.emit inst 2;
  Alcotest.(check (list (pair string int)))
    "fan-out in composition order"
    [ ("a", 1); ("b", 1); ("c", 1); ("a", 2); ("b", 2); ("c", 2) ]
    (List.rev !log)

let test_filter () =
  let seen = ref [] in
  let inst =
    Obs.Instrument.filter
      (fun x -> x mod 2 = 0)
      (Obs.Instrument.of_fn (fun x -> seen := x :: !seen))
  in
  List.iter (Obs.Instrument.emit inst) [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check (list int)) "evens only" [ 2; 4; 6 ] (List.rev !seen)

let test_of_module () =
  let count = ref 0 in
  let module M = struct
    type event = int

    let on_event e = count := !count + e
  end in
  let inst = Obs.Instrument.of_module (module M : Obs.Instrument.S with type event = int) in
  Alcotest.(check bool) "not null" false (Obs.Instrument.is_null inst);
  List.iter (Obs.Instrument.emit inst) [ 1; 10; 100 ];
  Alcotest.(check int) "module sink saw all" 111 !count

let test_emit_on_null_is_noop () =
  (* Must not raise, must not do anything. *)
  Obs.Instrument.emit Obs.Instrument.null (failwith, "already evaluated");
  Alcotest.(check pass) "no-op" () ()

(* --- Counters ------------------------------------------------------------ *)

let test_counters_direct () =
  let c = Obs.Counters.create () in
  Obs.Counters.record_data c ~bits:32;
  Obs.Counters.record_data c ~bits:8;
  Obs.Counters.record_sync c;
  Obs.Counters.record_sync c;
  Obs.Counters.record_sync c;
  Alcotest.(check int) "data msgs" 2 c.Obs.Counters.data_msgs;
  Alcotest.(check int) "data bits" 40 c.Obs.Counters.data_bits;
  Alcotest.(check int) "sync msgs" 3 c.Obs.Counters.sync_msgs;
  Alcotest.(check int) "sync bits" 3 c.Obs.Counters.sync_bits;
  Alcotest.(check int) "total msgs" 5 (Obs.Counters.total_msgs c);
  Alcotest.(check int) "total bits" 43 (Obs.Counters.total_bits c)

(* --- Trace sink ---------------------------------------------------------- *)

let test_trace_sink_order () =
  let ts = Obs.Trace_sink.create () in
  let inst = Obs.Trace_sink.instrument ts in
  List.iter (Obs.Instrument.emit inst) [ "x"; "y"; "z" ];
  Alcotest.(check (list string)) "chronological" [ "x"; "y"; "z" ]
    (Obs.Trace_sink.events ts);
  Alcotest.(check int) "length" 3 (Obs.Trace_sink.length ts);
  Obs.Trace_sink.clear ts;
  Alcotest.(check int) "cleared" 0 (Obs.Trace_sink.length ts)

(* record_trace is sugar for an internal trace sink: the trace in the
   result must equal what an external trace sink (projected through
   Trace.of_obs) records of the same run. *)
let test_record_trace_equals_external_sink () =
  let n = 8 and t = 6 in
  let proposals = Engine.distinct_proposals n in
  let schedule = silent ~n ~f:3 in
  let via_flag = run_rwwc ~record_trace:true ~n ~t ~schedule ~proposals () in
  let ts = Obs.Trace_sink.create () in
  let via_sink =
    Rwwc_runner.run
      (Engine.config
         ~instrument:(Obs.Trace_sink.instrument ts)
         ~schedule ~n ~t ~proposals ())
  in
  Alcotest.(check bool) "same trace" true
    (via_flag.Run_result.trace
    = List.filter_map Trace.of_obs (Obs.Trace_sink.events ts));
  Alcotest.(check bool) "untraced result has empty trace" true
    (via_sink.Run_result.trace = [])

(* --- JSON ---------------------------------------------------------------- *)

let test_json_scalars () =
  let open Obs.Json in
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "true" "true" (to_string (Bool true));
  Alcotest.(check string) "int" "-42" (to_string (Int (-42)));
  Alcotest.(check string) "nan -> null" "null" (to_string (Float nan));
  Alcotest.(check string) "inf -> null" "null" (to_string (Float infinity));
  Alcotest.(check string) "float" "1.5" (to_string (Float 1.5))

let test_json_escaping () =
  let open Obs.Json in
  Alcotest.(check string) "quotes and backslash" {|"a\"b\\c"|}
    (to_string (String {|a"b\c|}));
  Alcotest.(check string) "control chars" {|"\n\t\u0001"|}
    (to_string (String "\n\t\001"))

let test_json_structures () =
  let open Obs.Json in
  Alcotest.(check string) "nested"
    {|{"xs":[1,2],"o":{"k":"v"},"e":[],"eo":{}}|}
    (to_string
       (Obj
          [
            ("xs", List [ Int 1; Int 2 ]);
            ("o", Obj [ ("k", String "v") ]);
            ("e", List []);
            ("eo", Obj []);
          ]))

(* --- The parser: round-trips and rejections ------------------------------ *)

let test_json_parse_roundtrip () =
  let open Obs.Json in
  let docs =
    [
      Null;
      Bool true;
      Bool false;
      Int 0;
      Int (-42);
      Int max_int;
      Float 0.5;
      Float (-1.25e-3);
      Float 3.0;
      Float 0.1;
      String "";
      String "plain";
      String "quote \" slash \\ nl \n tab \t ctl \x01";
      List [];
      List [ Int 1; String "two"; Null ];
      Obj [];
      Obj
        [
          ("xs", List [ Int 1; Int 2 ]);
          ("o", Obj [ ("k", String "v") ]);
          ("f", Float 2.75);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = to_string v in
      match of_string s with
      | Ok v' -> Alcotest.(check string) s s (to_string v')
      | Error e -> Alcotest.failf "%s: %s" s e)
    docs

let test_json_parse_values () =
  let open Obs.Json in
  let ok s v =
    match of_string s with
    | Ok v' -> Alcotest.(check bool) s true (v = v')
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "  null " Null;
  ok "17" (Int 17);
  ok "-0" (Int 0);
  ok "1e3" (Float 1000.0);
  ok "2.5" (Float 2.5);
  ok {|"aAb"|} (String "aAb");
  (* Surrogate pair: U+1F600 *)
  ok {|"😀"|} (String "\xf0\x9f\x98\x80");
  ok {|[1, 2 ,3]|} (List [ Int 1; Int 2; Int 3 ]);
  ok {|{ "a" : 1 , "b" : [true] }|}
    (Obj [ ("a", Int 1); ("b", List [ Bool true ]) ]);
  Alcotest.(check bool) "member hit" true
    (member "a" (Obj [ ("a", Int 1) ]) = Some (Int 1));
  Alcotest.(check bool) "member miss" true
    (member "z" (Obj [ ("a", Int 1) ]) = None);
  Alcotest.(check bool) "member non-object" true (member "a" (Int 1) = None)

let test_json_parse_rejects () =
  let open Obs.Json in
  List.iter
    (fun s ->
      match of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid input %S" s
      | Error _ -> ())
    [
      "";
      "tru";
      "[1,]";
      "[1 2]";
      "{\"a\"}";
      "{\"a\":}";
      "{a:1}";
      "\"unterminated";
      "\"bad \\x escape\"";
      "1 2";
      "01e";
      "-";
      "nullx";
      {|"\ud83d"|} (* unpaired high surrogate *);
    ]

(* --- Adversarial parser input ------------------------------------------- *)

let test_json_adversarial_rejects () =
  let open Obs.Json in
  let reject what s =
    match of_string s with
    | Ok _ -> Alcotest.failf "%s: accepted %S" what s
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "%s: parser raised %s" what (Printexc.to_string e)
  in
  reject "deep list nesting" (String.make 1_000_000 '[');
  reject "deep object nesting"
    (String.concat "" (List.init 100_000 (fun _ -> {|{"a":|})));
  reject "huge number" "1e999";
  reject "huge negative number" "-1e999";
  reject "huge exponent" "1e999999999999999";
  reject "invalid escape" {|"\q"|};
  reject "invalid unicode escape" {|"\uZZZZ"|};
  reject "truncated unicode escape" {|"\u12|};
  reject "trailing garbage" {|{"a":1} trailing|};
  reject "trailing bracket" "[1,2,3]]";
  (* Boundary: documents within the depth bound still parse. *)
  let deep k =
    String.concat "" (List.init k (fun _ -> "["))
    ^ "1"
    ^ String.concat "" (List.init k (fun _ -> "]"))
  in
  (match of_string (deep 500) with
  | Ok _ -> ()
  | Error why -> Alcotest.failf "rejected a 500-deep document: %s" why);
  match of_string (deep 600) with
  | Ok _ -> Alcotest.fail "accepted a 600-deep document"
  | Error _ -> ()

let json_token_gen =
  QCheck2.Gen.oneofl
    [
      "{"; "}"; "["; "]"; ","; ":"; "\""; "\\"; "\\u"; "\\ud83d"; "null";
      "true"; "false"; "tru"; "1"; "-"; "0"; "."; "e"; "E"; "+"; "1e999";
      "99999999999999999999"; {|"a"|}; " "; "\n"; "\t"; "\255"; "\000";
    ]

let prop_json_parser_total =
  Helpers.qtest ~count:2000 "of_string_located is total on adversarial input"
    QCheck2.Gen.(
      map (String.concat "") (list_size (int_range 0 40) json_token_gen))
    (fun s ->
      match Obs.Json.of_string_located s with
      | Ok _ -> true
      | Error (off, _) ->
        if off < 0 || off > String.length s then
          QCheck2.Test.fail_reportf "offset %d outside 0..%d on %S" off
            (String.length s) s
        else true
      | exception e ->
        QCheck2.Test.fail_reportf "parser raised %s on %S"
          (Printexc.to_string e) s)

let json_value_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) int;
        map
          (fun f -> Obs.Json.Float (if Float.is_finite f then f else 0.))
          float;
        map
          (fun s -> Obs.Json.String s)
          (string_size ~gen:printable (int_range 0 10));
      ]
  in
  sized_size (int_range 0 3)
  @@ fix (fun self depth ->
         if depth = 0 then scalar
         else
           oneof
             [
               scalar;
               map
                 (fun xs -> Obs.Json.List xs)
                 (list_size (int_range 0 4) (self (depth - 1)));
               map
                 (fun fields -> Obs.Json.Obj fields)
                 (list_size (int_range 0 4)
                    (pair
                       (string_size ~gen:printable (int_range 0 6))
                       (self (depth - 1))));
             ])

let prop_json_random_roundtrip =
  Helpers.qtest ~count:500 "of_string inverts to_string on random values"
    json_value_gen
    (fun v ->
      let s = Obs.Json.to_string v in
      match Obs.Json.of_string s with
      | Ok v' ->
        if v' = v then true
        else
          QCheck2.Test.fail_reportf "round trip changed %S into %S" s
            (Obs.Json.to_string v')
      | Error why ->
        QCheck2.Test.fail_reportf "rejected own output %S: %s" s why)

let prop_json_mutation_total =
  Helpers.qtest ~count:500 "byte-flipped documents never crash the parser"
    QCheck2.Gen.(triple json_value_gen small_nat small_nat)
    (fun (v, i, j) ->
      let s = Obs.Json.to_string v in
      let b = Bytes.of_string s in
      if Bytes.length b > 0 then
        Bytes.set b (i mod Bytes.length b) (Char.chr (j mod 256));
      let mangled = Bytes.to_string b in
      match Obs.Json.of_string mangled with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck2.Test.fail_reportf "parser raised %s on %S"
          (Printexc.to_string e) mangled)

(* --- Metrics vs. the engine's semantic counters -------------------------- *)

let check_metrics_match (res : Run_result.t) (m : Obs.Metrics.t) =
  let c = Obs.Metrics.counters m in
  Alcotest.(check int) "data msgs" res.Run_result.data_msgs
    c.Obs.Counters.data_msgs;
  Alcotest.(check int) "data bits" res.Run_result.data_bits
    c.Obs.Counters.data_bits;
  Alcotest.(check int) "sync msgs" res.Run_result.sync_msgs
    c.Obs.Counters.sync_msgs;
  Alcotest.(check int) "sync bits" res.Run_result.sync_bits
    c.Obs.Counters.sync_bits;
  Alcotest.(check int) "rounds" res.Run_result.rounds_executed
    (Obs.Metrics.rounds m);
  Alcotest.(check int) "decided"
    (List.length (Run_result.decisions res))
    (Obs.Metrics.decided m);
  Alcotest.(check int) "crashes"
    (Pid.Set.cardinal (Run_result.all_crashes res))
    (Obs.Metrics.crashes m)

let run_with_metrics runner ~n ~t ~schedule =
  let m = Obs.Metrics.create () in
  let res =
    runner
      (Engine.config
         ~instrument:(Obs.Metrics.instrument m)
         ~schedule ~n ~t ~proposals:(Engine.distinct_proposals n) ())
  in
  (res, m)

let test_metrics_match_result () =
  let n = 8 and t = 6 in
  List.iter
    (fun (name, schedule) ->
      List.iter
        (fun (algo, runner) ->
          (* Greedy schedules use extended-model crash points rwwc-only. *)
          if not (name = "greedy-f3" && algo <> "rwwc") then begin
            let res, m = run_with_metrics runner ~n ~t ~schedule in
            Alcotest.(check pass) (algo ^ "/" ^ name) () ();
            check_metrics_match res m
          end)
        [
          ("rwwc", Rwwc_runner.run);
          ("flood", Flood_runner.run);
          ("es", Es_runner.run);
        ])
    [
      ("none", Schedule.empty);
      ("silent-f3", silent ~n ~f:3);
      ("greedy-f3", greedy ~n ~f:3);
    ]

let test_metrics_per_round_sums () =
  let res, m =
    run_with_metrics Rwwc_runner.run ~n:8 ~t:6 ~schedule:(greedy ~n:8 ~f:3)
  in
  let rows = Obs.Metrics.per_round m in
  Alcotest.(check int) "one bucket per round" res.Run_result.rounds_executed
    (List.length rows);
  List.iteri
    (fun i (r : Obs.Metrics.round_stats) ->
      Alcotest.(check int) "rounds are 1-based and contiguous" (i + 1) r.round)
    rows;
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Alcotest.(check int) "data msgs sum" res.Run_result.data_msgs
    (sum (fun (r : Obs.Metrics.round_stats) -> r.data_msgs));
  Alcotest.(check int) "data bits sum" res.Run_result.data_bits
    (sum (fun (r : Obs.Metrics.round_stats) -> r.data_bits));
  Alcotest.(check int) "sync msgs sum" res.Run_result.sync_msgs
    (sum (fun (r : Obs.Metrics.round_stats) -> r.sync_msgs));
  Alcotest.(check int) "decisions sum"
    (List.length (Run_result.decisions res))
    (sum (fun (r : Obs.Metrics.round_stats) -> r.decisions));
  Alcotest.(check int) "crashes sum"
    (Pid.Set.cardinal (Run_result.all_crashes res))
    (sum (fun (r : Obs.Metrics.round_stats) -> r.crashes))

let test_metrics_aggregate_across_runs () =
  let m = Obs.Metrics.create () in
  let inst = Obs.Metrics.instrument m in
  let n = 6 and t = 4 in
  let one schedule =
    Rwwc_runner.run
      (Engine.config ~instrument:inst ~schedule ~n ~t
         ~proposals:(Engine.distinct_proposals n) ())
  in
  let r1 = one Schedule.empty in
  let r2 = one (silent ~n ~f:2) in
  Alcotest.(check int) "runs" 2 (Obs.Metrics.runs m);
  Alcotest.(check int) "summed data msgs"
    (r1.Run_result.data_msgs + r2.Run_result.data_msgs)
    (Obs.Metrics.counters m).Obs.Counters.data_msgs;
  Alcotest.(check int) "rounds is the max"
    (max r1.Run_result.rounds_executed r2.Run_result.rounds_executed)
    (Obs.Metrics.rounds m)

let test_metrics_json_shape () =
  let _, m =
    run_with_metrics Rwwc_runner.run ~n:8 ~t:6 ~schedule:(silent ~n:8 ~f:3)
  in
  let s = Obs.Json.to_string (Obs.Metrics.to_json m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (contains_substring s needle))
    [
      {|"rounds":|};
      {|"data_msgs":|};
      {|"sync_bits":|};
      {|"per_round":[|};
      {|"decision_latency":|};
    ]

(* --- Online invariants --------------------------------------------------- *)

let test_online_clean_runs () =
  let n = 8 and t = 6 in
  List.iter
    (fun schedule ->
      let proposals = Engine.distinct_proposals n in
      let guard = Obs.Online_invariants.create ~n ~t ~proposals () in
      let res =
        Rwwc_runner.run
          (Engine.config
             ~instrument:(Obs.Online_invariants.instrument guard)
             ~schedule ~n ~t ~proposals ())
      in
      Alcotest.(check bool) "terminated" true (Run_result.all_correct_decided res);
      Alcotest.(check bool) "saw events" true
        (Obs.Online_invariants.events_seen guard > 0))
    [ Schedule.empty; silent ~n ~f:3; greedy ~n ~f:3 ]

(* The headline negative test: Rwwc without the sync phase (Data_decide)
   violates uniform agreement on the classic witness schedule, and the
   online checker must abort the run with Violation — not let it finish. *)
module Broken_runner = Engine.Make (Core.Rwwc_variants.Data_decide)

let test_online_catches_broken_variant () =
  let n = 4 and t = 2 in
  let proposals = Engine.distinct_proposals n in
  let schedule =
    Schedule.of_list
      [
        ( Pid.of_int 1,
          Crash.make ~round:1 (Crash.During_data (Pid.set_of_ints [ 4 ])) );
      ]
  in
  let guard = Obs.Online_invariants.create ~n ~t ~proposals () in
  Alcotest.(check bool) "aborts with Violation" true
    (try
       ignore
         (Broken_runner.run
            (Engine.config
               ~instrument:(Obs.Online_invariants.instrument guard)
               ~schedule ~n ~t ~proposals ()));
       false
     with Obs.Online_invariants.Violation msg ->
       contains_substring msg "agree");
  (* Sanity: without the guard the run completes and indeed disagrees. *)
  let res =
    Broken_runner.run (Engine.config ~schedule ~n ~t ~proposals ())
  in
  Alcotest.(check bool) "seed disagreement" true
    (List.length (Run_result.decided_values res) > 1)

(* Synthetic streams: drive the checker directly, one violation per case. *)
let feed guard events =
  let inst = Obs.Online_invariants.instrument guard in
  List.iter (Obs.Instrument.emit inst) events

let expect_violation ~substr guard events =
  Alcotest.(check bool)
    ("raises mentioning " ^ substr)
    true
    (try
       feed guard events;
       false
     with Obs.Online_invariants.Violation msg -> contains_substring msg substr)

let decided ~round ~pid ~value =
  Obs.Event.Decided { round; pid = Pid.of_int pid; value }

let crashed ~round ~pid =
  Obs.Event.Crashed
    { round; pid = Pid.of_int pid; point = Crash.Before_send }

let guard ?check_termination ?bound () =
  Obs.Online_invariants.create ?check_termination ?bound ~n:3 ~t:1
    ~proposals:[| 10; 20; 30 |] ()

let test_online_synthetic_violations () =
  expect_violation ~substr:"validity" (guard ())
    [ decided ~round:1 ~pid:1 ~value:99 ];
  expect_violation ~substr:"agree" (guard ())
    [ decided ~round:1 ~pid:1 ~value:10; decided ~round:1 ~pid:2 ~value:20 ];
  expect_violation ~substr:"twice" (guard ())
    [ decided ~round:1 ~pid:1 ~value:10; decided ~round:2 ~pid:1 ~value:10 ];
  expect_violation ~substr:"crash" (guard ())
    [ crashed ~round:1 ~pid:1; decided ~round:2 ~pid:1 ~value:10 ];
  expect_violation ~substr:"budget" (guard ())
    [ crashed ~round:1 ~pid:1; crashed ~round:1 ~pid:2 ];
  expect_violation ~substr:"bound" (guard ~bound:2 ())
    [ decided ~round:3 ~pid:1 ~value:10 ];
  expect_violation ~substr:"termination" (guard ())
    [ decided ~round:1 ~pid:1 ~value:10; Obs.Event.Run_end { rounds = 1 } ]

let test_online_termination_check_optional () =
  let g = guard ~check_termination:false () in
  feed g [ decided ~round:1 ~pid:1 ~value:10; Obs.Event.Run_end { rounds = 1 } ];
  Alcotest.(check int) "consumed both events" 2
    (Obs.Online_invariants.events_seen g)

let test_online_clean_stream_accepted () =
  let g = guard () in
  feed g
    [
      Obs.Event.Round_begin { round = 1 };
      decided ~round:1 ~pid:1 ~value:20;
      decided ~round:1 ~pid:2 ~value:20;
      crashed ~round:1 ~pid:3;
      Obs.Event.Run_end { rounds = 1 };
    ];
  Alcotest.(check int) "all events consumed" 5
    (Obs.Online_invariants.events_seen g)

let () =
  Alcotest.run "obs"
    [
      ( "instrument",
        [
          Alcotest.test_case "null" `Quick test_null_is_null;
          Alcotest.test_case "compose" `Quick test_compose_order_and_fanout;
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "of-module" `Quick test_of_module;
          Alcotest.test_case "emit-null" `Quick test_emit_on_null_is_noop;
        ] );
      ( "counters",
        [ Alcotest.test_case "direct" `Quick test_counters_direct ] );
      ( "trace-sink",
        [
          Alcotest.test_case "order" `Quick test_trace_sink_order;
          Alcotest.test_case "record-trace-equivalence" `Quick
            test_record_trace_equals_external_sink;
        ] );
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "structures" `Quick test_json_structures;
          Alcotest.test_case "parse-roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse-values" `Quick test_json_parse_values;
          Alcotest.test_case "parse-rejects" `Quick test_json_parse_rejects;
          Alcotest.test_case "adversarial-rejects" `Quick
            test_json_adversarial_rejects;
          prop_json_parser_total;
          prop_json_random_roundtrip;
          prop_json_mutation_total;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "matches-result" `Quick test_metrics_match_result;
          Alcotest.test_case "per-round-sums" `Quick test_metrics_per_round_sums;
          Alcotest.test_case "aggregates" `Quick test_metrics_aggregate_across_runs;
          Alcotest.test_case "json-shape" `Quick test_metrics_json_shape;
        ] );
      ( "online-invariants",
        [
          Alcotest.test_case "clean-runs" `Quick test_online_clean_runs;
          Alcotest.test_case "catches-broken-variant" `Quick
            test_online_catches_broken_variant;
          Alcotest.test_case "synthetic-violations" `Quick
            test_online_synthetic_violations;
          Alcotest.test_case "termination-optional" `Quick
            test_online_termination_check_optional;
          Alcotest.test_case "clean-stream" `Quick
            test_online_clean_stream_accepted;
        ] );
    ]
