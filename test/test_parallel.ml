(* Tests for the domain pool: parallel execution must be observationally
   identical to sequential, across domain counts, including exceptions and
   deterministic witnesses — and running real simulations under it must
   produce the same results as running them inline. *)

open Helpers

let domain_counts = [ 1; 2; 3; 4; 7 ]

let test_map_matches_sequential () =
  let xs = Array.init 257 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f xs in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" domains)
        expected
        (Parallel.Pool.map ~domains f xs))
    domain_counts

let test_map_edge_sizes () =
  List.iter
    (fun n ->
      let xs = Array.init n (fun i -> i) in
      Alcotest.(check (array int))
        (Printf.sprintf "n=%d" n)
        (Array.map succ xs)
        (Parallel.Pool.map ~domains:4 succ xs))
    [ 0; 1; 2; 3; 4; 5; 8 ]

let test_map_list () =
  Alcotest.(check (list int)) "list" [ 2; 4; 6 ]
    (Parallel.Pool.map_list ~domains:2 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_exception_propagates () =
  let f x = if x = 5 then failwith "boom" else x in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d raises" domains)
        true
        (try
           ignore (Parallel.Pool.map ~domains f (Array.init 10 Fun.id));
           false
         with Failure m -> m = "boom"))
    domain_counts

let test_first_exception_in_input_order () =
  let f x = if x >= 3 then failwith (string_of_int x) else x in
  Alcotest.(check bool) "first offender wins" true
    (try
       ignore (Parallel.Pool.map ~domains:3 f (Array.init 9 Fun.id));
       false
     with Failure m -> m = "3")

let test_count_if () =
  let xs = Array.init 100 Fun.id in
  List.iter
    (fun domains ->
      Alcotest.(check int)
        (Printf.sprintf "domains=%d" domains)
        50
        (Parallel.Pool.count_if ~domains (fun x -> x mod 2 = 0) xs))
    domain_counts

let test_find_first_deterministic () =
  let xs = Array.init 100 Fun.id in
  let f x = if x mod 7 = 0 && x > 0 then Some x else None in
  List.iter
    (fun domains ->
      Alcotest.(check (option int))
        (Printf.sprintf "domains=%d" domains)
        (Some 7)
        (Parallel.Pool.find_first ~domains f xs))
    domain_counts;
  Alcotest.(check (option int)) "none" None
    (Parallel.Pool.find_first ~domains:4 (fun _ -> None) xs)

(* Witness determinism must not depend on parallelism: with many matches
   scattered through the input, every domain count in 1..8 must report the
   match at the smallest input index — even though a later chunk's worker
   may well hit its own match first in wall-clock time. *)
let test_find_first_input_order_all_domains () =
  let xs = Array.init 500 Fun.id in
  (* Matches at 123, 246, 369, 492; input-order winner is 123. *)
  let f x = if x > 0 && x mod 123 = 0 then Some (10 * x) else None in
  for domains = 1 to 8 do
    Alcotest.(check (option int))
      (Printf.sprintf "domains=%d smallest-index witness" domains)
      (Some 1230)
      (Parallel.Pool.find_first ~domains f xs)
  done

(* Same contract for exceptions: map must re-raise the offender with the
   smallest input index, for every domain count in 1..8. Offenders at
   41, 82, ... — input-order first is 41. *)
let test_map_first_exception_all_domains () =
  let f x = if x > 0 && x mod 41 = 0 then failwith (string_of_int x) else x in
  for domains = 1 to 8 do
    Alcotest.(check string)
      (Printf.sprintf "domains=%d smallest-index offender" domains)
      "41"
      (try
         ignore (Parallel.Pool.map ~domains f (Array.init 300 Fun.id));
         "no exception"
       with Failure m -> m)
  done

(* Real workload: the same consensus runs, inline vs under the pool. *)
let test_simulations_under_domains () =
  let scenarios =
    Array.init 40 (fun seed ->
        let rng = Prng.Rng.of_int seed in
        let n = 4 + Prng.Rng.int rng 5 in
        let t = n - 2 in
        let schedule =
          Adversary.Strategies.random ~rng ~model:Model.Model_kind.Extended ~n
            ~f:(Prng.Rng.int rng (t + 1))
            ~max_round:(t + 1)
        in
        (n, t, schedule))
  in
  let run (n, t, schedule) =
    let res =
      run_rwwc ~n ~t ~schedule
        ~proposals:(Sync_sim.Engine.distinct_proposals n) ()
    in
    (Sync_sim.Run_result.decisions res, Sync_sim.Run_result.total_bits res)
  in
  let inline = Array.map run scenarios in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d identical" domains)
        true
        (Parallel.Pool.map ~domains run scenarios = inline))
    [ 2; 4 ]

let test_default_domains_positive () =
  Alcotest.(check bool) "at least one" true (Parallel.Pool.default_domains () >= 1)

(* The short-circuit contract, pinned by invocation counting.  Sequentially
   a hit at index 50 of 100 must stop the scan at exactly 51 calls — the
   seed pool mapped f over every element even after a hit. *)
let test_find_first_short_circuit_sequential () =
  let calls = Atomic.make 0 in
  let f x =
    Atomic.incr calls;
    if x = 50 then Some x else None
  in
  Alcotest.(check (option int))
    "hit" (Some 50)
    (Parallel.Pool.find_first ~domains:1 f (Array.init 100 Fun.id));
  Alcotest.(check int) "exactly 51 invocations" 51 (Atomic.get calls)

(* In parallel the count may overshoot by in-flight elements, but with the
   hit near the front of a long input it must stay far below n: workers
   stop pulling once the dispatch counter passes the best hit.  Every
   element spins a little so no worker can race deep past the hit. *)
let test_find_first_short_circuit_parallel () =
  let n = 1000 in
  let spin () =
    let acc = ref 0 in
    for i = 1 to 20_000 do
      acc := !acc + (i land 7)
    done;
    ignore (Sys.opaque_identity !acc)
  in
  List.iter
    (fun domains ->
      let calls = Atomic.make 0 in
      let f x =
        Atomic.incr calls;
        spin ();
        if x = 10 then Some x else None
      in
      Alcotest.(check (option int))
        (Printf.sprintf "domains=%d hit" domains)
        (Some 10)
        (Parallel.Pool.find_first ~domains f (Array.init n Fun.id));
      let c = Atomic.get calls in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d short-circuits (%d calls)" domains c)
        true (c < n / 2))
    [ 2; 4; 8 ]

(* The satellite bugfix: a raising element must poison [map] the same way
   a hit poisons [find_first].  The seed pool recorded the Raised slot but
   kept draining the whole array; now workers stop pulling once the
   dispatch counter passes the smallest raising index.  With the poison at
   index 0 of a long input whose elements each spin a little, the
   evaluated count must stay far below n. *)
let test_map_short_circuit_on_raise () =
  let n = 100_000 in
  let spin () =
    let acc = ref 0 in
    for i = 1 to 2_000 do
      acc := !acc + (i land 7)
    done;
    ignore (Sys.opaque_identity !acc)
  in
  List.iter
    (fun domains ->
      let calls = Atomic.make 0 in
      let f x =
        Atomic.incr calls;
        spin ();
        if x = 0 then failwith "poison" else x
      in
      Alcotest.(check string)
        (Printf.sprintf "domains=%d raises the poison" domains)
        "poison"
        (try
           ignore (Parallel.Pool.map ~domains f (Array.init n Fun.id));
           "no exception"
         with Failure m -> m);
      let c = Atomic.get calls in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d short-circuits (%d calls)" domains c)
        true (c < n / 2))
    [ 2; 4; 8 ];
  (* Sequential degradation stops at the offender too: exactly 1 call. *)
  let calls = Atomic.make 0 in
  Alcotest.check_raises "domains=1 stops at the offender" (Failure "poison")
    (fun () ->
      ignore
        (Parallel.Pool.map ~domains:1
           (fun x ->
             Atomic.incr calls;
             if x = 0 then failwith "poison" else x)
           (Array.init 64 Fun.id)));
  Alcotest.(check int) "domains=1 exactly 1 invocation" 1 (Atomic.get calls)

(* iter and count_if are built on map and inherit the short-circuit. *)
let test_count_if_short_circuit_on_raise () =
  let n = 50_000 in
  let calls = Atomic.make 0 in
  let p x =
    Atomic.incr calls;
    if x = 0 then failwith "poison" else x mod 2 = 0
  in
  Alcotest.(check string) "raises" "poison"
    (try
       ignore (Parallel.Pool.count_if ~domains:4 p (Array.init n Fun.id));
       "no exception"
     with Failure m -> m);
  Alcotest.(check bool) "evaluated a minority" true (Atomic.get calls < n / 2)

let test_cancelled_preset () =
  let stop = Atomic.make true in
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "map domains=%d" domains)
        Parallel.Pool.Cancelled
        (fun () ->
          ignore (Parallel.Pool.map ~domains ~stop succ (Array.init 64 Fun.id))))
    [ 1; 4 ];
  Alcotest.check_raises "find_first" Parallel.Pool.Cancelled (fun () ->
      ignore
        (Parallel.Pool.find_first ~domains:4 ~stop
           (fun x -> Some x)
           (Array.init 64 Fun.id)))

let test_cancelled_from_inside () =
  let stop = Atomic.make false in
  Alcotest.check_raises "set by a task" Parallel.Pool.Cancelled (fun () ->
      ignore
        (Parallel.Pool.iter ~domains:4 ~stop
           (fun x -> if x = 100 then Atomic.set stop true)
           (Array.init 100_000 Fun.id)))

let test_shards_cover_and_order () =
  Alcotest.(check (list (pair int int)))
    "one shard per domain, in order"
    [ (4, 0); (4, 1); (4, 2); (4, 3) ]
    (Parallel.Pool.shards ~domains:4 (fun ~shards ~shard -> (shards, shard)));
  Alcotest.(check (list int))
    "single shard runs inline" [ 0 ]
    (Parallel.Pool.shards ~domains:1 (fun ~shards:_ ~shard -> shard))

let test_shards_first_exception () =
  Alcotest.(check string) "smallest shard index wins" "1"
    (try
       ignore
         (Parallel.Pool.shards ~domains:4 (fun ~shards:_ ~shard ->
              if shard >= 1 then failwith (string_of_int shard) else shard));
       "no exception"
     with Failure m -> m)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map" `Quick test_map_matches_sequential;
          Alcotest.test_case "edges" `Quick test_map_edge_sizes;
          Alcotest.test_case "map-list" `Quick test_map_list;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "first-exception" `Quick test_first_exception_in_input_order;
          Alcotest.test_case "count-if" `Quick test_count_if;
          Alcotest.test_case "find-first" `Quick test_find_first_deterministic;
          Alcotest.test_case "find-first-order-1-8" `Quick
            test_find_first_input_order_all_domains;
          Alcotest.test_case "map-exception-order-1-8" `Quick
            test_map_first_exception_all_domains;
          Alcotest.test_case "simulations" `Quick test_simulations_under_domains;
          Alcotest.test_case "defaults" `Quick test_default_domains_positive;
          Alcotest.test_case "find-first-short-circuit-seq" `Quick
            test_find_first_short_circuit_sequential;
          Alcotest.test_case "find-first-short-circuit-par" `Quick
            test_find_first_short_circuit_parallel;
          Alcotest.test_case "map-short-circuit-raise" `Quick
            test_map_short_circuit_on_raise;
          Alcotest.test_case "count-if-short-circuit-raise" `Quick
            test_count_if_short_circuit_on_raise;
          Alcotest.test_case "cancelled-preset" `Quick test_cancelled_preset;
          Alcotest.test_case "cancelled-inside" `Quick test_cancelled_from_inside;
          Alcotest.test_case "shards" `Quick test_shards_cover_and_order;
          Alcotest.test_case "shards-exception" `Quick test_shards_first_exception;
        ] );
    ]
