(* Minimize: greedy shrinker, schedule/script reductions, differential
   oracle and replayable repro artifacts.

   The qcheck properties pin the shrinker's contract — deterministic,
   sound (the minimum still fails), 1-minimal (no single reduction of the
   minimum fails) — over random failing schedules of the broken
   [data-decide] ablation.  The differential section asserts the headline
   EXP-DIFF claim directly: zero cross-engine disagreements over the full
   canonical n = 4 sweep. *)

open Model

let data_decide =
  match Minimize.Algo.find "data-decide" with
  | Ok a -> a
  | Error why -> failwith why

let property_fails algo ~n ~t ~property schedule =
  let res = algo.Minimize.Algo.run ~n ~t schedule in
  List.exists
    (fun c -> c.Spec.Properties.name = property && not c.Spec.Properties.ok)
    (Minimize.Algo.checks algo ~t res)

let shrink algo ~n ~t ~property schedule =
  Minimize.Shrink.run ~reductions:Adversary.Enumerate.reductions
    ~still_fails:(property_fails algo ~n ~t ~property)
    schedule

(* --- Enumerate.weight / Enumerate.reductions ---------------------------- *)

let schedule_gen =
  let open QCheck2.Gen in
  let* seed = int_range 0 1_000_000 in
  let* f = int_range 0 2 in
  let rng = Prng.Rng.of_int seed in
  return
    (Adversary.Strategies.random ~rng ~model:Model_kind.Extended ~n:4 ~f
       ~max_round:3)

let test_reductions_strictly_lighter =
  Helpers.qtest "every reduction strictly decreases the weight" schedule_gen
    (fun schedule ->
      let w = Adversary.Enumerate.weight schedule in
      Seq.for_all
        (fun s -> Adversary.Enumerate.weight s < w)
        (Adversary.Enumerate.reductions schedule))

let test_reductions_empty_iff_failure_free =
  Helpers.qtest "reductions are empty exactly on the failure-free schedule"
    schedule_gen (fun schedule ->
      let empty = Schedule.bindings schedule = [] in
      let no_reductions =
        Seq.is_empty (Adversary.Enumerate.reductions schedule)
      in
      empty = no_reductions)

let test_reductions_deterministic =
  Helpers.qtest "reductions enumerate in a fixed order" schedule_gen
    (fun schedule ->
      let strings s =
        List.map Schedule.to_string
          (List.of_seq (Adversary.Enumerate.reductions s))
      in
      strings schedule = strings schedule)

(* --- Shrink: deterministic, sound, 1-minimal ----------------------------- *)

(* Random schedules for the broken variant; schedules that happen to pass
   make the property trivially true, failing ones exercise the descent. *)
let shrink_outcome schedule =
  match Minimize.Algo.violation data_decide ~n:4 ~t:2 schedule with
  | None -> None
  | Some check ->
    let property = check.Spec.Properties.name in
    Some (property, shrink data_decide ~n:4 ~t:2 ~property schedule)

let test_shrink_deterministic =
  Helpers.qtest ~count:120 "shrink: same input, same minimum" schedule_gen
    (fun schedule ->
      match (shrink_outcome schedule, shrink_outcome schedule) with
      | None, None -> true
      | Some (_, a), Some (_, b) ->
        Schedule.to_string a.Minimize.Shrink.minimal
        = Schedule.to_string b.Minimize.Shrink.minimal
        && a.Minimize.Shrink.steps = b.Minimize.Shrink.steps
        && a.Minimize.Shrink.candidates = b.Minimize.Shrink.candidates
      | _ -> false)

let test_shrink_sound =
  Helpers.qtest ~count:120 "shrink: the minimum still fails the property"
    schedule_gen (fun schedule ->
      match shrink_outcome schedule with
      | None -> true
      | Some (property, o) ->
        property_fails data_decide ~n:4 ~t:2 ~property
          o.Minimize.Shrink.minimal)

let test_shrink_one_minimal =
  Helpers.qtest ~count:120
    "shrink: every single-step reduction of the minimum passes" schedule_gen
    (fun schedule ->
      match shrink_outcome schedule with
      | None -> true
      | Some (property, o) ->
        Seq.for_all
          (fun s -> not (property_fails data_decide ~n:4 ~t:2 ~property s))
          (Adversary.Enumerate.reductions o.Minimize.Shrink.minimal))

let test_shrink_never_heavier =
  Helpers.qtest ~count:120 "shrink: the minimum is never heavier" schedule_gen
    (fun schedule ->
      match shrink_outcome schedule with
      | None -> true
      | Some (_, o) ->
        Adversary.Enumerate.weight o.Minimize.Shrink.minimal
        <= Adversary.Enumerate.weight o.Minimize.Shrink.original)

let test_shrink_rejects_passing_input () =
  Alcotest.check_raises "passing input is an invalid argument"
    (Invalid_argument
       "Minimize.Shrink.run: the input does not fail the property")
    (fun () ->
      ignore
        (Minimize.Shrink.run ~reductions:Adversary.Enumerate.reductions
           ~still_fails:(fun _ -> false)
           Schedule.empty))

(* The acceptance pin: the first failing schedule of the broken Data_decide
   sweep shrinks to the known 1-crash-event witness. *)
let test_data_decide_pinned_witness () =
  match
    Minimize.Algo.first_violation data_decide ~n:4 ~t:2 ~max_f:2 ~max_round:3
  with
  | None -> Alcotest.fail "data-decide has no violation at n=4"
  | Some (schedule, check) ->
    let property = check.Spec.Properties.name in
    Alcotest.(check string) "violated property" "uniform-agreement" property;
    let o = shrink data_decide ~n:4 ~t:2 ~property schedule in
    Alcotest.(check string) "minimal witness" "p1@r1 during-data{p4}"
      (Schedule.to_string o.Minimize.Shrink.minimal)

(* --- Script reductions --------------------------------------------------- *)

let action_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Net.Fault_plan.Deliver;
      return Net.Fault_plan.Lose;
      (let* copies = list_size (int_range 0 3) (float_range 0.5 5.0) in
       return (Net.Fault_plan.Copies copies));
    ]

let script_gen = QCheck2.Gen.(array_size (int_range 0 12) action_gen)

let test_script_reductions_strictly_lighter =
  Helpers.qtest "script reductions strictly decrease the weight" script_gen
    (fun script ->
      let w = Minimize.Script.weight script in
      Seq.for_all
        (fun s -> Minimize.Script.weight s < w)
        (Minimize.Script.reductions script))

let test_script_reductions_empty_iff_faithful =
  Helpers.qtest "script reductions are empty exactly on all-Deliver"
    script_gen (fun script ->
      let faithful =
        Array.for_all (fun a -> a = Net.Fault_plan.Deliver) script
      in
      faithful = Seq.is_empty (Minimize.Script.reductions script))

let test_script_trim () =
  let open Net.Fault_plan in
  Alcotest.(check int) "trailing delivers dropped" 2
    (Array.length
       (Minimize.Script.trim [| Lose; Copies [ 1.0; 1.0 ]; Deliver; Deliver |]));
  Alcotest.(check int) "all-deliver trims to empty" 0
    (Array.length (Minimize.Script.trim [| Deliver; Deliver |]));
  Alcotest.(check int) "trailing fault is kept" 3
    (Array.length (Minimize.Script.trim [| Deliver; Deliver; Lose |]))

(* --- Differential oracle -------------------------------------------------- *)

(* The EXP-DIFF acceptance criterion, asserted directly: zero cross-engine
   disagreements over the full canonical n = 4 sweep (max_f = 2). *)
let test_oracle_full_canonical_sweep () =
  let n = 4 and t = 2 in
  let profile = Adversary.Canonical.rotating_coordinator ~n in
  let classes = ref 0 and timed = ref 0 in
  Seq.iter
    (fun schedule ->
      incr classes;
      match Minimize.Oracle.check_schedule ~n ~t schedule with
      | Minimize.Oracle.Agree lanes ->
        List.iter
          (fun lane ->
            if
              lane.Minimize.Oracle.name = "timed-lan"
              && lane.Minimize.Oracle.note = ""
            then incr timed)
          lanes
      | Minimize.Oracle.Disagree { diffs; _ } ->
        Alcotest.failf "engines disagree on %s: %s"
          (Schedule.to_string schedule)
          (String.concat "; " diffs))
    (Adversary.Canonical.schedules profile ~n ~max_f:2 ~max_round:3);
  Alcotest.(check int) "canonical classes covered" 263 !classes;
  Alcotest.(check bool) "timed lane ran on some classes" true (!timed > 0)

let test_oracle_masked_storm () =
  let faults =
    Adversary.Net_faults.network_storm ~drop:0.1 ~duplicate:0.05 ~jitter:0.2
      ~jitter_spread:2.5 ~seed:17L ()
  in
  match Minimize.Oracle.check_masked ~budget:2 ~faults ~seed:3L () with
  | Minimize.Oracle.Wrong why, _ -> Alcotest.failf "wrong decision: %s" why
  | (Minimize.Oracle.Masked | Minimize.Oracle.Detected _), injected ->
    Alcotest.(check bool) "storm injected faults" true (injected > 0)

(* --- Repro artifacts ------------------------------------------------------ *)

let roundtrip repro =
  match Minimize.Repro.of_json (Minimize.Repro.to_json repro) with
  | Ok r -> r
  | Error why -> Alcotest.failf "repro did not round-trip: %s" why

let witness_schedule =
  Schedule.of_list
    [
      ( Pid.of_int 1,
        Crash.make ~round:1 (Crash.During_data (Pid.set_of_ints [ 4 ])) );
    ]

let consensus_repro =
  {
    Minimize.Repro.n = 4;
    t = 2;
    case =
      Minimize.Repro.Consensus
        {
          algo = "data-decide";
          schedule = witness_schedule;
          property = "uniform-agreement";
        };
    steps = 0;
    candidates = 2;
    one_minimal = true;
  }

let test_repro_json_roundtrip () =
  let check_case repro =
    let r = roundtrip repro in
    Alcotest.(check string) "same document"
      (Obs.Json.to_string (Minimize.Repro.to_json repro))
      (Obs.Json.to_string (Minimize.Repro.to_json r))
  in
  check_case consensus_repro;
  check_case
    {
      consensus_repro with
      case = Minimize.Repro.Cross_engine { schedule = witness_schedule };
    };
  check_case
    {
      Minimize.Repro.n = 6;
      t = 4;
      case =
        Minimize.Repro.Chaos
          {
            budget = 2;
            engine_seed = 9L;
            actions =
              [|
                Net.Fault_plan.Lose;
                Net.Fault_plan.Copies [ 1.25; 3.5 ];
                Net.Fault_plan.Deliver;
              |];
          };
      steps = 3;
      candidates = 11;
      one_minimal = false;
    }

let test_repro_save_load_replay () =
  let file = Filename.temp_file "minimize" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Minimize.Repro.save ~file consensus_repro;
      Alcotest.(check bool) "no stale tmp file" false
        (Sys.file_exists (file ^ ".tmp"));
      match Minimize.Repro.load file with
      | Error e ->
        Alcotest.failf "load failed: %s" (Minimize.Repro.load_error_to_string e)
      | Ok r -> (
        match Minimize.Repro.replay r with
        | Ok (detail :: _) ->
          Alcotest.(check bool) "detail names the property" true
            (Helpers.contains_substring detail "uniform-agreement")
        | Ok [] -> Alcotest.fail "replay returned no details"
        | Error why -> Alcotest.failf "replay failed: %s" why))

let test_repro_replay_rejects_passing () =
  (* A schedule the correct rwwc masters must not "reproduce". *)
  let repro =
    {
      consensus_repro with
      case =
        Minimize.Repro.Consensus
          {
            algo = "rwwc";
            schedule = witness_schedule;
            property = "uniform-agreement";
          };
    }
  in
  match Minimize.Repro.replay repro with
  | Ok _ -> Alcotest.fail "replay claimed a violation on correct rwwc"
  | Error why ->
    Alcotest.(check bool) "explains the non-reproduction" true
      (Helpers.contains_substring why "did not reproduce")

let test_repro_load_errors () =
  (match Minimize.Repro.load "/nonexistent/minimize-repro.json" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error e ->
    Alcotest.(check string) "names the missing file"
      "/nonexistent/minimize-repro.json" e.Minimize.Repro.file);
  let file = Filename.temp_file "minimize" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let write contents =
        let oc = open_out file in
        output_string oc contents;
        close_out oc
      in
      (* [load] must come back as a structured [Error] on every corrupted
         artifact below — never raise. *)
      let expect_error what contents check =
        write contents;
        match Minimize.Repro.load file with
        | Ok _ -> Alcotest.failf "%s: load accepted a corrupt artifact" what
        | Error e -> check e
        | exception e ->
          Alcotest.failf "%s: load raised %s" what (Printexc.to_string e)
      in
      expect_error "unsupported version" "{\"version\":999}" (fun e ->
          Alcotest.(check bool) "reason mentions the version" true
            (Helpers.contains_substring e.Minimize.Repro.reason "version"));
      (* Truncated save: a prefix of a real artifact is a JSON syntax
         error, and the error carries the offending byte offset. *)
      let valid =
        Obs.Json.to_string (Minimize.Repro.to_json consensus_repro)
      in
      expect_error "truncated artifact"
        (String.sub valid 0 (String.length valid / 2))
        (fun e ->
          Alcotest.(check bool) "syntax error carries an offset" true
            (e.Minimize.Repro.offset <> None));
      (* Schema-valid JSON whose pid is out of range: [Pid.of_int 0]
         raises [Invalid_argument] internally; load must absorb it. *)
      expect_error "pid out of range"
        {|{"version":1,"n":4,"t":2,"case":{"kind":"consensus","algo":"rwwc","schedule":[{"pid":0,"round":1,"point":{"kind":"before_send"}}],"property":"uniform-agreement"},"shrink_steps":0,"shrink_candidates":0,"one_minimal":false}|}
        (fun e ->
          Alcotest.(check bool) "reason mentions the pid" true
            (Helpers.contains_substring e.Minimize.Repro.reason "Pid"));
      (* Deeply nested garbage: the parser rejects it at its depth bound
         instead of overflowing the stack. *)
      expect_error "deeply nested garbage"
        (String.concat "" (List.init 100_000 (fun _ -> "[")))
        (fun e ->
          Alcotest.(check bool) "rejected at the depth bound" true
            (Helpers.contains_substring e.Minimize.Repro.reason "nesting"));
      (* Single-byte corruption anywhere in a valid artifact must never
         raise; flipping a byte may still leave a loadable document, so
         only the no-exception guarantee is asserted. *)
      String.iteri
        (fun i _ ->
          let mangled = Bytes.of_string valid in
          Bytes.set mangled i '\255';
          write (Bytes.to_string mangled);
          match Minimize.Repro.load file with
          | Ok _ | Error _ -> ()
          | exception e ->
            Alcotest.failf "byte flip at %d: load raised %s" i
              (Printexc.to_string e))
        valid)

(* --- Algo registry -------------------------------------------------------- *)

let test_algo_registry () =
  Alcotest.(check (list string)) "registry names"
    [
      "rwwc";
      "data-decide";
      "ascending-commit";
      "piggyback-commit";
      "flood";
      "early-stopping";
    ]
    Minimize.Algo.names;
  (match Minimize.Algo.find "no-such-algo" with
  | Ok _ -> Alcotest.fail "found a nonexistent algorithm"
  | Error why ->
    Alcotest.(check bool) "error lists the valid names" true
      (Helpers.contains_substring why "rwwc"));
  List.iter
    (fun name ->
      match Minimize.Algo.find name with
      | Error why -> Alcotest.failf "%s: %s" name why
      | Ok a ->
        let correct =
          Minimize.Algo.first_violation a ~n:4 ~t:2 ~max_f:2 ~max_round:3 = None
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: broken flag matches the sweep" name)
          a.Minimize.Algo.broken (not correct))
    Minimize.Algo.names

let () =
  Alcotest.run "minimize"
    [
      ( "reductions",
        [
          test_reductions_strictly_lighter;
          test_reductions_empty_iff_failure_free;
          test_reductions_deterministic;
        ] );
      ( "shrink",
        [
          test_shrink_deterministic;
          test_shrink_sound;
          test_shrink_one_minimal;
          test_shrink_never_heavier;
          Alcotest.test_case "rejects-passing-input" `Quick
            test_shrink_rejects_passing_input;
          Alcotest.test_case "data-decide-pinned-witness" `Quick
            test_data_decide_pinned_witness;
        ] );
      ( "script",
        [
          test_script_reductions_strictly_lighter;
          test_script_reductions_empty_iff_faithful;
          Alcotest.test_case "trim" `Quick test_script_trim;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "full-canonical-sweep-agrees" `Slow
            test_oracle_full_canonical_sweep;
          Alcotest.test_case "masked-storm" `Quick test_oracle_masked_storm;
        ] );
      ( "repro",
        [
          Alcotest.test_case "json-roundtrip" `Quick test_repro_json_roundtrip;
          Alcotest.test_case "save-load-replay" `Quick
            test_repro_save_load_replay;
          Alcotest.test_case "replay-rejects-passing" `Quick
            test_repro_replay_rejects_passing;
          Alcotest.test_case "load-errors" `Quick test_repro_load_errors;
        ] );
      ( "algo",
        [ Alcotest.test_case "registry" `Quick test_algo_registry ] );
    ]
