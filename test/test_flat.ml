(* The flat-engine differential suite (DESIGN.md §13).

   Pins the flat-memory engine core ([Engine.Make_flat] and the list-API
   adapter path [Engine.Make]) byte-identical — in the
   {!Run_result.equal_observable} sense: statuses, rounds, all four wire
   counters, post-decision crashes — to the preserved previous-generation
   engine ([Engine_reference]), across the whole minimizer algorithm
   registry and the full exhaustive n=4 schedule space.  Also pins:

   - the bitset FloodSet against a local reimplementation of the historical
     [Set.Make (Int)] version;
   - view/list API agreement: an algorithm observing its rounds through the
     zero-copy view records exactly what its list-API twin records
     (qcheck, random extended-model schedules);
   - the zero-allocation guarantee: a warm flat-runner round performs zero
     minor-heap allocation (Gc counters; satellite of the n=1024 target). *)

open Model
open Sync_sim

(* --- Cross-engine byte-identity over the exhaustive n=4 space ------------- *)

module type FLAT_ALGO = Algorithm_intf.FLAT

type entry = { name : string; modl : Model_kind.t; algo : (module FLAT_ALGO) }

(* Mirrors the [Minimize.Algo] registry: the natively-flat algorithms as
   themselves, the list-API ablations through the adapter — exactly the
   modules production call sites run. *)
let registry : entry list =
  [
    {
      name = "rwwc";
      modl = Model_kind.Extended;
      algo = (module Core.Rwwc : FLAT_ALGO);
    };
    {
      name = "data-decide";
      modl = Model_kind.Extended;
      algo =
        (module Algorithm_intf.Of_list (Core.Rwwc_variants.Data_decide)
        : FLAT_ALGO);
    };
    {
      name = "ascending-commit";
      modl = Model_kind.Extended;
      algo =
        (module Algorithm_intf.Of_list (Core.Rwwc_variants.Ascending_commit)
        : FLAT_ALGO);
    };
    {
      name = "piggyback-commit";
      modl = Model_kind.Extended;
      algo =
        (module Algorithm_intf.Of_list (Core.Rwwc_variants.Piggyback_commit)
        : FLAT_ALGO);
    };
    {
      name = "flood";
      modl = Model_kind.Classic;
      algo = (module Baselines.Flood_set : FLAT_ALGO);
    };
    {
      name = "early-stopping";
      modl = Model_kind.Classic;
      algo =
        (module Algorithm_intf.Of_list (Baselines.Early_stopping) : FLAT_ALGO);
    };
  ]

let check_identical ~who ~schedule flat reference =
  if not (Run_result.equal_observable flat reference) then
    Alcotest.failf "%s diverges from reference engine on %s:@.flat %a@.ref %a"
      who
      (Schedule.to_string schedule)
      Run_result.pp flat Run_result.pp reference

(* Full sweep at n=4: every schedule with at most 2 victims crashing in
   rounds 1..3 (10,753 schedules in the extended model, 3,355 classic).
   The reused-scratch runner is compared on every schedule; the fresh-scratch
   [run] entry point on a deterministic subsample (it shares [exec] with the
   runner, the subsample only guards scratch initialization). *)
let sweep_identical (e : entry) () =
  let module A = (val e.algo) in
  let module F = Engine.Make_flat (A) in
  let module R = Engine_reference.Make (A) in
  let n = 4 and t = 2 in
  let cfg =
    Engine.config ~n ~t ~proposals:(Engine.distinct_proposals n) ()
  in
  let flat_runner = F.runner cfg and ref_runner = R.runner cfg in
  let checked = ref 0 in
  Seq.iter
    (fun schedule ->
      let reference = ref_runner schedule in
      check_identical ~who:(e.name ^ "/runner") ~schedule
        (flat_runner schedule) reference;
      if !checked mod 97 = 0 then
        check_identical ~who:(e.name ^ "/run") ~schedule
          (F.run { cfg with schedule })
          reference;
      incr checked)
    (Adversary.Enumerate.schedules ~model:e.modl ~n ~max_f:t ~max_round:3);
  Alcotest.(check bool)
    (Printf.sprintf "%s: swept a non-trivial space (%d schedules)" e.name
       !checked)
    true (!checked > 1000)

(* --- FloodSet: bitset vs the historical Set.Make (Int) implementation ----- *)

(* The pre-bitset FloodSet, verbatim: the value-set as an AVL int set, the
   payload as a sorted list.  Kept here as the differential twin. *)
module Flood_legacy = struct
  module Int_set = Set.Make (Int)

  type msg = Values of int list
  type state = { me : int; n : int; t : int; values : Int_set.t }

  let name = "flood-set-legacy"
  let model = Model_kind.Classic
  let decision_mode = `Halt
  let msg_bits ~value_bits (Values vs) = value_bits * List.length vs

  let pp_msg ppf (Values vs) =
    Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int vs))

  let init ~n ~t ~me ~proposal =
    { me = Pid.to_int me; n; t; values = Int_set.singleton proposal }

  let data_sends state ~round:_ =
    let payload = Values (Int_set.elements state.values) in
    List.filter_map
      (fun dest ->
        if Pid.to_int dest = state.me then None else Some (dest, payload))
      (Pid.all ~n:state.n)

  let sync_sends _state ~round:_ = []

  let compute state ~round ~data ~syncs =
    assert (syncs = []);
    let values =
      List.fold_left
        (fun acc (_, Values vs) -> List.fold_left (Fun.flip Int_set.add) acc vs)
        state.values data
    in
    let state = { state with values } in
    if round >= state.t + 1 then (state, Some (Int_set.min_elt values))
    else (state, None)
end

let flood_bitset_identical () =
  let module F = Engine.Make_flat (Baselines.Flood_set) in
  let module L = Engine.Make (Flood_legacy) in
  let n = 4 and t = 2 in
  let cfg =
    Engine.config ~n ~t ~proposals:(Engine.distinct_proposals n) ()
  in
  let flood = F.runner cfg and legacy = L.runner cfg in
  Seq.iter
    (fun schedule ->
      let a = flood schedule and b = legacy schedule in
      if not (Run_result.equal_observable a b) then
        Alcotest.failf
          "bitset flood diverges from Set-based flood on %s:@.bitset %a@.set \
           %a"
          (Schedule.to_string schedule)
          Run_result.pp a Run_result.pp b)
    (Adversary.Enumerate.schedules ~model:Model_kind.Classic ~n ~max_f:t
       ~max_round:3)

(* --- View API vs list API: identical observations (qcheck) ---------------- *)

(* Two observationally-equivalent recorders: both broadcast a
   round-and-sender-tagged payload plus a control message to every other
   process and decide in round 3; each logs everything it receives.  One
   observes through the legacy list API, the other through the zero-copy
   view — reading it every way the view offers (indexed, iterator, list
   materialization, membership probes) and cross-checking the readings
   against each other before logging.  The engine-level property is that
   the two logs are equal, line for line. *)
type observation = {
  o_round : int;
  o_me : int;
  o_data : (int * int) list;  (* (sender, payload), increasing sender *)
  o_syncs : int list;  (* sync senders, increasing *)
}

module Recorder_base = struct
  type msg = int
  type state = { me : int; n : int }

  let model = Model_kind.Extended
  let decision_mode = `Halt
  let msg_bits ~value_bits:_ _ = 8
  let pp_msg = Format.pp_print_int
  let init ~n ~t:_ ~me ~proposal:_ = { me = Pid.to_int me; n }
  let payload state ~round = (100 * state.me) + round

  let data_sends state ~round =
    List.filter_map
      (fun dest ->
        if Pid.to_int dest = state.me then None
        else Some (dest, payload state ~round))
      (Pid.all ~n:state.n)

  let sync_sends state ~round:_ =
    List.filter (fun d -> Pid.to_int d <> state.me) (Pid.all ~n:state.n)
end

let recorder_log : observation list ref = ref []

module Recorder_list = struct
  include Recorder_base

  let name = "recorder-list"

  let compute state ~round ~data ~syncs =
    recorder_log :=
      {
        o_round = round;
        o_me = state.me;
        o_data = List.map (fun (p, m) -> (Pid.to_int p, m)) data;
        o_syncs = List.map Pid.to_int syncs;
      }
      :: !recorder_log;
    (state, if round >= 3 then Some state.me else None)
end

module Recorder_flat = struct
  include Recorder_base

  let name = "recorder-flat"
  let quiescence = Algorithm_intf.Chatty

  (* The engine never calls these on a FLAT module, but the signature keeps
     them so the same module also runs through the list path if wanted. *)
  let compute state ~round ~data:_ ~syncs:_ =
    (state, if round >= 3 then Some state.me else None)

  let send state ~round e =
    for d = 1 to state.n do
      if d <> state.me then
        Emitter.data e (Pid.of_int d) (payload state ~round)
    done;
    for d = 1 to state.n do
      if d <> state.me then Emitter.sync e (Pid.of_int d)
    done

  let receive state ~round view =
    let count = Round_view.data_count view in
    (* Indexed reads... *)
    let indexed =
      List.init count (fun k ->
          ( Pid.to_int (Round_view.data_sender view k),
            Round_view.data_payload view k ))
    in
    (* ...must agree with the iterator... *)
    let via_iter =
      List.rev
        (Round_view.fold_data
           (fun acc p m -> (Pid.to_int p, m) :: acc)
           [] view)
    in
    Alcotest.(check (list (pair int int))) "iter_data = indexed" indexed via_iter;
    (* ...and with the materialized legacy list. *)
    let via_list =
      List.map (fun (p, m) -> (Pid.to_int p, m)) (Round_view.data_list view)
    in
    Alcotest.(check (list (pair int int))) "data_list = indexed" indexed via_list;
    let syncs = List.map Pid.to_int (Round_view.sync_list view) in
    let via_fold =
      List.rev (Round_view.fold_syncs (fun acc p -> Pid.to_int p :: acc) [] view)
    in
    Alcotest.(check (list int)) "fold_syncs = sync_list" syncs via_fold;
    Alcotest.(check int) "sync_count" (List.length syncs)
      (Round_view.sync_count view);
    for p = 1 to state.n do
      Alcotest.(check bool)
        (Printf.sprintf "has_sync p%d" p)
        (List.mem p syncs)
        (Round_view.has_sync view (Pid.of_int p))
    done;
    recorder_log :=
      { o_round = round; o_me = state.me; o_data = indexed; o_syncs = syncs }
      :: !recorder_log;
    if round >= 3 then Round_view.decide view state.me;
    state
end

let view_matches_list_api =
  Helpers.qtest ~count:200 "flat view records what the list API records"
    (Helpers.scenario_gen ~min_n:3 ~max_n:6 ~model:Model_kind.Extended ())
    (fun s ->
      let module L = Engine.Make (Recorder_list) in
      let module F = Engine.Make_flat (Recorder_flat) in
      let cfg =
        Engine.config ~schedule:s.Helpers.schedule ~n:s.Helpers.n
          ~t:s.Helpers.t ~proposals:s.Helpers.proposals ()
      in
      recorder_log := [];
      let res_list = L.run cfg in
      let log_list = !recorder_log in
      recorder_log := [];
      let res_flat = F.run cfg in
      let log_flat = !recorder_log in
      recorder_log := [];
      log_list = log_flat && Run_result.equal_observable res_list res_flat)

(* --- Zero allocation per warm round --------------------------------------- *)

(* A FLAT algorithm whose send/receive are allocation-free: fixed fan-out of
   one data and one control message per round, state mutated in place, and
   it never decides — so a run always executes exactly [max_rounds] rounds.
   Two warm runners differing only in [max_rounds] then have identical
   per-run fixed costs (validation, result record, statuses array), and the
   minor-heap words attributable to the extra rounds must be exactly zero. *)
module Spin = struct
  type msg = int
  type state = { me : int; n : int; mutable sum : int }

  let name = "spin"
  let quiescence = Algorithm_intf.Chatty
  let model = Model_kind.Extended
  let decision_mode = `Halt
  let msg_bits ~value_bits:_ _ = 8
  let pp_msg = Format.pp_print_int
  let init ~n ~t:_ ~me ~proposal = { me = Pid.to_int me; n; sum = proposal }
  let next state = (state.me mod state.n) + 1

  let data_sends state ~round:_ = [ (Pid.of_int (next state), state.sum) ]
  let sync_sends state ~round:_ = [ Pid.of_int (next state) ]
  let compute state ~round:_ ~data:_ ~syncs:_ = (state, None)

  let send state ~round:_ e =
    Emitter.data e (Pid.of_int (next state)) state.sum;
    Emitter.sync e (Pid.of_int (next state))

  let receive state ~round:_ view =
    for k = 0 to Round_view.data_count view - 1 do
      state.sum <- state.sum + Round_view.data_payload view k
    done;
    if Round_view.has_sync view (Pid.of_int (next state)) then
      state.sum <- state.sum + 1;
    state
end

let warm_rounds_allocate_zero () =
  let module R = Engine.Make_flat (Spin) in
  let n = 16 in
  let proposals = Engine.distinct_proposals n in
  let short_rounds = 10 and long_rounds = 60 and reps = 50 in
  let runner_of rounds =
    R.runner (Engine.config ~n ~t:(n - 1) ~max_rounds:rounds ~proposals ())
  in
  let measure runner =
    ignore (runner Schedule.empty : Run_result.t) (* warm: arena grown *);
    let before = Gc.minor_words () in
    for _ = 1 to reps do
      ignore (runner Schedule.empty : Run_result.t)
    done;
    Gc.minor_words () -. before
  in
  let short_runner = runner_of short_rounds
  and long_runner = runner_of long_rounds in
  let short_words = measure short_runner in
  let long_words = measure long_runner in
  (* 50 extra rounds x 50 runs: a single word allocated per round would show
     up as 2500 words.  Demand exactly zero. *)
  Alcotest.(check (float 0.0))
    (Printf.sprintf
       "%d extra rounds allocate nothing (short=%.0f long=%.0f words)"
       (long_rounds - short_rounds) short_words long_words)
    short_words long_words

let () =
  Alcotest.run "flat-engine"
    [
      ( "byte-identity",
        List.map
          (fun e ->
            Alcotest.test_case
              (Printf.sprintf "%s: flat = reference over exhaustive n=4" e.name)
              `Slow (sweep_identical e))
          registry );
      ( "flood-bitset",
        [
          Alcotest.test_case "bitset flood = Set flood over exhaustive n=4"
            `Slow flood_bitset_identical;
        ] );
      ("view-api", [ view_matches_list_api ]);
      ( "allocation",
        [ Alcotest.test_case "warm rounds allocate zero" `Quick warm_rounds_allocate_zero ]
      );
    ]
