(* Golden outputs of the engines, captured from the pre-observer-layer
   engine (the seed) on fixed adversary schedules.  The refactor moved all
   observability behind instruments; these literals pin down that a run
   under the default (null) instrument is bit-for-bit the same Run_result:
   statuses, rounds executed, and all four Theorem 2 wire counters — plus
   an empty trace.

   Schedules: Adversary.Strategies.coordinator_killer at n = 8, f = 3
   (Silent / Greedy) and the empty schedule; proposals 1..8.  The Greedy
   style uses extended-model crash points, so it applies to rwwc only. *)

open Model
open Sync_sim
open Helpers

type golden = {
  algo : string;
  adversary : string;
  run : Engine.config -> Run_result.t;
  schedule : Schedule.t;
  rounds : int;
  data_msgs : int;
  data_bits : int;
  sync_msgs : int;
  sync_bits : int;
  statuses : Run_result.status list;  (* p1 .. p8 *)
}

let d value at_round = Run_result.Decided { value; at_round }
let c at_round = Run_result.Crashed { at_round }
let rep k st = List.init k (fun _ -> st)

let n = 8
let t = 6

let silent =
  Adversary.Strategies.coordinator_killer ~n ~f:3
    ~style:Adversary.Strategies.Silent

let greedy =
  Adversary.Strategies.coordinator_killer ~n ~f:3
    ~style:Adversary.Strategies.Greedy

let goldens =
  [
    {
      algo = "rwwc";
      adversary = "none";
      run = Rwwc_runner.run;
      schedule = Schedule.empty;
      rounds = 1;
      data_msgs = 7;
      data_bits = 224;
      sync_msgs = 7;
      sync_bits = 7;
      statuses = rep 8 (d 1 1);
    };
    {
      algo = "flood";
      adversary = "none";
      run = Flood_runner.run;
      schedule = Schedule.empty;
      rounds = 7;
      data_msgs = 392;
      data_bits = 87808;
      sync_msgs = 0;
      sync_bits = 0;
      statuses = rep 8 (d 1 7);
    };
    {
      algo = "early-stopping";
      adversary = "none";
      run = Es_runner.run;
      schedule = Schedule.empty;
      rounds = 2;
      data_msgs = 112;
      data_bits = 3696;
      sync_msgs = 0;
      sync_bits = 0;
      statuses = rep 8 (d 1 2);
    };
    {
      algo = "rwwc";
      adversary = "silent-f3";
      run = Rwwc_runner.run;
      schedule = silent;
      rounds = 4;
      data_msgs = 4;
      data_bits = 128;
      sync_msgs = 4;
      sync_bits = 4;
      statuses = [ c 1; c 2; c 3 ] @ rep 5 (d 4 4);
    };
    {
      algo = "flood";
      adversary = "silent-f3";
      run = Flood_runner.run;
      schedule = silent;
      rounds = 7;
      data_msgs = 266;
      data_bits = 50176;
      sync_msgs = 0;
      sync_bits = 0;
      statuses = [ c 1; c 2; c 3 ] @ rep 5 (d 2 7);
    };
    {
      algo = "early-stopping";
      adversary = "silent-f3";
      run = Es_runner.run;
      schedule = silent;
      rounds = 5;
      data_msgs = 196;
      data_bits = 6468;
      sync_msgs = 0;
      sync_bits = 0;
      statuses = [ c 1; c 2; c 3 ] @ rep 5 (d 2 5);
    };
    {
      algo = "rwwc";
      adversary = "greedy-f3";
      run = Rwwc_runner.run;
      schedule = greedy;
      rounds = 4;
      data_msgs = 22;
      data_bits = 704;
      sync_msgs = 16;
      sync_bits = 16;
      statuses = [ c 1; c 2; c 3; d 1 4 ] @ rep 4 (d 1 1);
    };
  ]

let check_one g () =
  let res =
    g.run (Engine.config ~schedule:g.schedule ~n ~t
             ~proposals:(Engine.distinct_proposals n) ())
  in
  Alcotest.(check int) "rounds executed" g.rounds res.Run_result.rounds_executed;
  Alcotest.(check int) "data msgs" g.data_msgs res.Run_result.data_msgs;
  Alcotest.(check int) "data bits" g.data_bits res.Run_result.data_bits;
  Alcotest.(check int) "sync msgs" g.sync_msgs res.Run_result.sync_msgs;
  Alcotest.(check int) "sync bits" g.sync_bits res.Run_result.sync_bits;
  Alcotest.(check bool) "statuses" true
    (Array.to_list res.Run_result.statuses = g.statuses);
  Alcotest.(check bool) "no trace under the null instrument" true
    (res.Run_result.trace = [])

let () =
  Alcotest.run "golden"
    [
      ( "seed-engine",
        List.map
          (fun g ->
            Alcotest.test_case
              (g.algo ^ "/" ^ g.adversary)
              `Quick (check_one g))
          goldens );
    ]
