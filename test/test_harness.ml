(* Smoke and shape tests for the experiment harness: every experiment runs,
   and the verdict columns of the key tables are unanimously positive (each
   experiment already asserts consensus properties internally; here we also
   check the rendered claims). *)

let column_all table ~col ~expected =
  let rows = Diag.Table.row_count table in
  let ok = ref true in
  for row = 0 to rows - 1 do
    if Diag.Table.cell table ~row ~col <> expected then ok := false
  done;
  !ok && rows > 0

let test_registry_complete () =
  Alcotest.(check (list string)) "experiment ids"
    [ "F1"; "T1"; "T2"; "S22"; "LB"; "BIV"; "SIM"; "FFD"; "MR99"; "CL"; "ABL"; "UNI"; "LAN"; "EFF"; "OBS"; "CHAOS"; "MC"; "DIFF"; "LIVE"; "DIST"; "SERVE"; "RECOVER" ]
    Harness.Registry.ids;
  Alcotest.(check bool) "find is case-insensitive" true
    (Harness.Registry.find "t1" <> None);
  Alcotest.(check bool) "unknown id" true (Harness.Registry.find "nope" = None)

let run_id id =
  match Harness.Registry.find id with
  | Some e -> e.Harness.Experiment.run ()
  | None -> Alcotest.fail ("missing experiment " ^ id)

let test_t1_all_hold () =
  match run_id "T1" with
  | [ table ] ->
    Alcotest.(check bool) "holds column all yes" true
      (column_all table ~col:5 ~expected:"yes")
  | _ -> Alcotest.fail "T1 should produce one table"

let test_t2_shapes () =
  match run_id "T2" with
  | [ best; worst ] ->
    Alcotest.(check bool) "best case matches formula" true
      (column_all best ~col:4 ~expected:"yes");
    Alcotest.(check bool) "worst case within paper bound" true
      (column_all worst ~col:9 ~expected:"yes")
  | _ -> Alcotest.fail "T2 should produce two tables"

let test_lb_tightness () =
  match run_id "LB" with
  | [ tightness; witnesses ] ->
    Alcotest.(check bool) "tightness = f+1 everywhere" true
      (column_all tightness ~col:2 ~expected:"yes");
    (* every truncation row must have found a witness *)
    for row = 0 to Diag.Table.row_count witnesses - 1 do
      Alcotest.(check bool) "witness found" false
        (Diag.Table.cell witnesses ~row ~col:1 = "NOT FOUND")
    done
  | _ -> Alcotest.fail "LB should produce two tables"

let test_sim_decisions_match () =
  match run_id "SIM" with
  | [ table ] ->
    Alcotest.(check bool) "compiled = native decisions" true
      (column_all table ~col:5 ~expected:"yes")
  | _ -> Alcotest.fail "SIM should produce one table"

let test_cl_invariants () =
  match run_id "CL" with
  | [ table ] ->
    Alcotest.(check bool) "conservation everywhere" true
      (column_all table ~col:4 ~expected:"yes");
    Alcotest.(check bool) "consistency everywhere" true
      (column_all table ~col:5 ~expected:"yes")
  | _ -> Alcotest.fail "CL should produce one table"

let test_abl_classification () =
  match run_id "ABL" with
  | [ table ] ->
    Alcotest.(check bool) "paper variant is clean" true
      (Helpers.contains_substring (Diag.Table.cell table ~row:0 ~col:2) "none");
    Alcotest.(check string) "ascending loses the round bound" "round-bound"
      (Diag.Table.cell table ~row:1 ~col:2);
    Alcotest.(check string) "no-commit loses uniform agreement"
      "uniform-agreement"
      (Diag.Table.cell table ~row:2 ~col:2);
    Alcotest.(check string) "piggyback loses uniform agreement"
      "uniform-agreement"
      (Diag.Table.cell table ~row:3 ~col:2)
  | _ -> Alcotest.fail "ABL should produce one table"

let test_mc_verdict_sets_agree () =
  match run_id "MC" with
  | [ table ] ->
    Alcotest.(check bool) "full and reduced sweeps agree everywhere" true
      (column_all table ~col:6 ~expected:"yes")
  | _ -> Alcotest.fail "MC should produce one table"

let test_biv_no_decision_in_bivalent () =
  match run_id "BIV" with
  | [ table ] ->
    Alcotest.(check bool) "no bivalent decisions anywhere" true
      (column_all table ~col:6 ~expected:"no")
  | _ -> Alcotest.fail "BIV should produce one table"

let test_remaining_experiments_run () =
  List.iter
    (fun id ->
      let tables = run_id id in
      Alcotest.(check bool) (id ^ " returns tables") true (tables <> []);
      List.iter
        (fun t ->
          Alcotest.(check bool) (id ^ " tables non-empty") true
            (Diag.Table.row_count t > 0))
        tables)
    [ "F1"; "S22"; "FFD"; "MR99"; "EFF" ]

let test_workloads () =
  Alcotest.(check (array int)) "distinct" [| 1; 2; 3 |] (Harness.Workloads.distinct 3);
  Alcotest.(check (array int)) "binary" [| 0; 0; 1; 1 |]
    (Harness.Workloads.binary ~n:4 ~zeros:2);
  Alcotest.(check (array int)) "constant" [| 9; 9 |]
    (Harness.Workloads.constant ~n:2 ~value:9);
  let r = Harness.Workloads.random ~rng:(Prng.Rng.of_int 4) ~n:50 ~range:10 in
  Alcotest.(check bool) "random in range" true
    (Array.for_all (fun v -> v >= 0 && v < 10) r)

let () =
  Alcotest.run "harness"
    [
      ( "registry",
        [ Alcotest.test_case "complete" `Quick test_registry_complete ] );
      ( "shapes",
        [
          Alcotest.test_case "T1" `Quick test_t1_all_hold;
          Alcotest.test_case "T2" `Quick test_t2_shapes;
          Alcotest.test_case "LB" `Quick test_lb_tightness;
          Alcotest.test_case "SIM" `Quick test_sim_decisions_match;
          Alcotest.test_case "CL" `Quick test_cl_invariants;
          Alcotest.test_case "ABL" `Slow test_abl_classification;
          Alcotest.test_case "BIV" `Quick test_biv_no_decision_in_bivalent;
          Alcotest.test_case "MC" `Slow test_mc_verdict_sets_agree;
          Alcotest.test_case "others-run" `Quick test_remaining_experiments_run;
        ] );
      ( "workloads", [ Alcotest.test_case "generators" `Quick test_workloads ] );
    ]
