(* Tests for the symmetry reduction (Adversary.Canonical): point-class
   pins, idempotence, representative membership, engine-level equivalence
   of a schedule and its canonical form, and full-vs-reduced sweep verdict
   equality — including for a deliberately broken variant, so the quotient
   is shown to preserve violations, not just their absence. *)

open Model
open Sync_sim

let rotating4 = Adversary.Canonical.rotating_coordinator ~n:4

let full_ext4 () =
  Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n:4 ~max_f:2
    ~max_round:3

module Rwwc_run = Engine.Make (Core.Rwwc)
module Broken_run = Engine.Make (Core.Rwwc_variants.Data_decide)
module Flood_run = Engine.Make (Baselines.Flood_set)

let proposals4 = Harness.Workloads.distinct 4

(* A run's observable outcome, minus the trace: per-process statuses, round
   and wire accounting.  Equivalent schedules must agree on all of it. *)
let fingerprint (r : Run_result.t) =
  ( Array.to_list r.Run_result.statuses,
    r.Run_result.rounds_executed,
    r.Run_result.data_msgs,
    r.Run_result.data_bits,
    r.Run_result.sync_msgs,
    r.Run_result.sync_bits )

let test_canonical_point_classes () =
  let point = Alcotest.testable Crash.pp_point Crash.equal_point in
  let c ~victim ~round pt =
    Adversary.Canonical.canonical_point rotating4 ~victim:(Pid.of_int victim)
      ~round pt
  in
  (* Victim 2 in its own round plans data to {3,4} and 2 syncs. *)
  Alcotest.check point "undelivered dest dropped from the subset"
    (Crash.During_data (Pid.set_of_ints [ 3 ]))
    (c ~victim:2 ~round:2 (Crash.During_data (Pid.set_of_ints [ 1; 3 ])));
  Alcotest.check point "full subset is After_data 0" (Crash.After_data 0)
    (c ~victim:2 ~round:2 (Crash.During_data (Pid.set_of_ints [ 3; 4 ])));
  Alcotest.check point "prefix clamped to the planned syncs" Crash.After_send
    (c ~victim:2 ~round:2 (Crash.After_data 5));
  Alcotest.check point "proper prefix survives" (Crash.After_data 1)
    (c ~victim:2 ~round:2 (Crash.After_data 1));
  (* Victim 2 outside its own round sends nothing: every point collapses. *)
  Alcotest.check point "non-sending round collapses to Before_send"
    Crash.Before_send
    (c ~victim:2 ~round:1 Crash.After_send);
  Alcotest.check point "empty delivery is Before_send" Crash.Before_send
    (c ~victim:2 ~round:2 (Crash.During_data (Pid.set_of_ints [ 1 ])))

let test_noop_crashes_dropped () =
  (* Victim 1 decides and halts in round 1; a round-3 crash never fires. *)
  let sched =
    Schedule.of_list
      [ (Pid.of_int 1, Crash.make ~round:3 Crash.Before_send) ]
  in
  Alcotest.(check bool) "binding dropped" true
    (Adversary.Canonical.equal Schedule.empty
       (Adversary.Canonical.canonical rotating4 sched))

(* Satellite (b): every enumerated schedule canonicalizes to a schedule the
   reduced enumeration emits — exhaustively, for both profiles. *)
let membership profile full reduced =
  let reps = Hashtbl.create 512 in
  Seq.iter (fun s -> Hashtbl.replace reps (Schedule.to_string s) ()) reduced;
  Seq.iter
    (fun s ->
      let c = Adversary.Canonical.canonical profile s in
      if not (Hashtbl.mem reps (Schedule.to_string c)) then
        Alcotest.fail
          (Printf.sprintf "canonical of %s is %s, not a representative"
             (Schedule.to_string s) (Schedule.to_string c)))
    full

let test_representative_membership_rotating () =
  membership rotating4 (full_ext4 ())
    (Adversary.Canonical.schedules rotating4 ~n:4 ~max_f:2 ~max_round:3)

let test_representative_membership_broadcast () =
  let profile = Adversary.Canonical.broadcast ~n:4 ~t:2 in
  membership profile
    (Adversary.Enumerate.schedules ~model:Model_kind.Classic ~n:4 ~max_f:2
       ~max_round:3)
    (Adversary.Canonical.schedules profile ~n:4 ~max_f:2 ~max_round:3)

(* Idempotence, and the representatives being their own canonical forms. *)
let prop_canonical_idempotent =
  let pool = Array.of_seq (full_ext4 ()) in
  Helpers.qtest ~count:300 "canonical is idempotent"
    QCheck2.Gen.(int_range 0 (Array.length pool - 1))
    (fun i ->
      let s = pool.(i) in
      let c = Adversary.Canonical.canonical rotating4 s in
      Adversary.Canonical.equal c
        (Adversary.Canonical.canonical rotating4 c))

(* Layer-1 equivalence is result-level: a schedule and its canonical form
   produce the same engine outcome, for the correct algorithm and for the
   broken variant alike (movable is empty for the rotating profile, so
   canonical = normalize and no value relabeling is involved). *)
let engine_equivalence (runner : Model.Schedule.t -> Run_result.t) =
  Seq.iter
    (fun s ->
      let c = Adversary.Canonical.canonical rotating4 s in
      if fingerprint (runner s) <> fingerprint (runner c) then
        Alcotest.fail
          (Printf.sprintf "%s and its canonical %s diverge"
             (Schedule.to_string s) (Schedule.to_string c)))
    (full_ext4 ())

let test_engine_equivalence_rwwc () =
  engine_equivalence
    (Rwwc_run.runner (Engine.config ~n:4 ~t:2 ~proposals:proposals4 ()))

let test_engine_equivalence_broken () =
  engine_equivalence
    (Broken_run.runner (Engine.config ~n:4 ~t:2 ~proposals:proposals4 ()))

(* Layer-2 (pid renaming) soundness is verdict-level: flood-set's verdict
   is invariant under canonicalization even when the canonical form renames
   pids (and hence permutes decision values). *)
let test_verdict_invariance_broadcast () =
  let profile = Adversary.Canonical.broadcast ~n:4 ~t:2 in
  let run = Flood_run.runner (Engine.config ~n:4 ~t:2 ~proposals:proposals4 ()) in
  let verdict s =
    Spec.Properties.all_ok
      (Spec.Properties.uniform_consensus ~bound:3 (run s))
  in
  Seq.iter
    (fun s ->
      let c = Adversary.Canonical.canonical profile s in
      if verdict s <> verdict c then
        Alcotest.fail
          (Printf.sprintf "verdict of %s differs from its canonical %s"
             (Schedule.to_string s) (Schedule.to_string c)))
    (Adversary.Enumerate.schedules ~model:Model_kind.Classic ~n:4 ~max_f:2
       ~max_round:3)

let broken_violates run s =
  let res = run s in
  let f = Pid.Set.cardinal (Run_result.crashed res) in
  not
    (Spec.Properties.all_ok
       (Spec.Properties.uniform_consensus ~bound:(f + 1) res))

(* Satellite (c): the reduced sweep finds exactly the violating classes of
   the full sweep, on the broken variant (a nonempty verdict set). *)
let test_reduced_vs_full_verdicts () =
  let run = Broken_run.runner (Engine.config ~n:4 ~t:2 ~proposals:proposals4 ()) in
  let full_classes =
    Seq.filter (broken_violates run) (full_ext4 ())
    |> Seq.map (fun s ->
           Schedule.to_string (Adversary.Canonical.canonical rotating4 s))
    |> List.of_seq
    |> List.sort_uniq String.compare
  in
  let reduced_classes =
    Seq.filter (broken_violates run)
      (Adversary.Canonical.schedules rotating4 ~n:4 ~max_f:2 ~max_round:3)
    |> Seq.map Schedule.to_string |> List.of_seq |> List.sort String.compare
  in
  Alcotest.(check bool) "some violations found" true (full_classes <> []);
  Alcotest.(check (list string)) "identical violating classes" full_classes
    reduced_classes

(* Satellite (a): the sharded parallel sweep reports exactly the sequential
   violation set, whatever the domain count. *)
let test_sharded_sweep_deterministic () =
  let sweep ~domains =
    Parallel.Pool.shards ~domains (fun ~shards ~shard ->
        let run =
          Broken_run.runner (Engine.config ~n:4 ~t:2 ~proposals:proposals4 ())
        in
        Seq.fold_left
          (fun acc s ->
            if broken_violates run s then Schedule.to_string s :: acc else acc)
          []
          (Adversary.Enumerate.shard ~shards ~shard (full_ext4 ())))
    |> List.concat
    |> List.sort String.compare
  in
  let sequential = sweep ~domains:1 in
  Alcotest.(check bool) "some violations found" true (sequential <> []);
  List.iter
    (fun domains ->
      Alcotest.(check (list string))
        (Printf.sprintf "domains=%d" domains)
        sequential (sweep ~domains))
    [ 2; 4 ]

let () =
  Alcotest.run "canonical"
    [
      ( "layer1",
        [
          Alcotest.test_case "point-classes" `Quick test_canonical_point_classes;
          Alcotest.test_case "noop-drop" `Quick test_noop_crashes_dropped;
          prop_canonical_idempotent;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "membership-rotating" `Quick
            test_representative_membership_rotating;
          Alcotest.test_case "membership-broadcast" `Quick
            test_representative_membership_broadcast;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "engine-equivalence-rwwc" `Quick
            test_engine_equivalence_rwwc;
          Alcotest.test_case "engine-equivalence-broken" `Quick
            test_engine_equivalence_broken;
          Alcotest.test_case "verdict-invariance-broadcast" `Quick
            test_verdict_invariance_broadcast;
          Alcotest.test_case "reduced-vs-full" `Quick
            test_reduced_vs_full_verdicts;
          Alcotest.test_case "sharded-sweep-deterministic" `Quick
            test_sharded_sweep_deterministic;
        ] );
    ]
