(* Validation of the LAN realization of the extended model: same decisions
   as the abstract engine, wall-clock exactly rounds x (D + delta). *)

open Model
open Helpers

let big_d = 10.0
let delta = 1.0

module Lan_rwwc =
  Lan.Realization.Make
    (Core.Rwwc)
    (struct
      let big_d = big_d
      let delta = delta
    end)

module Runner = Timed_sim.Timed_engine.Make (Lan_rwwc)

let run_lan ?(n = 5) ?(faults = Net.Fault_plan.reliable) ~schedule () =
  let crashes =
    Lan.Realization.translate_rwwc_schedule ~n ~big_d ~delta schedule
  in
  Runner.run
    (Timed_sim.Timed_engine.config
       ~latency:(Timed_sim.Timed_engine.Uniform { lo = 0.5; hi = big_d })
       ~crashes ~faults ~seed:11L ~n ~t:(n - 2)
       ~proposals:(Sync_sim.Engine.distinct_proposals n) ())

let lan_decisions ~res =
  List.map
    (fun (pid, v, at) -> (Pid.to_int pid, v, Lan_rwwc.round_of_time at))
    (Timed_sim.Timed_engine.decisions res)

let abstract_decisions ~n ~schedule =
  let res =
    run_rwwc ~n ~t:(n - 2) ~schedule
      ~proposals:(Sync_sim.Engine.distinct_proposals n) ()
  in
  List.map
    (fun (pid, v, r) -> (Pid.to_int pid, v, r))
    (Sync_sim.Run_result.decisions res)

let sched l =
  Schedule.of_list
    (List.map (fun (p, r, pt) -> (Pid.of_int p, Crash.make ~round:r pt)) l)

let test_timing_constants () =
  Alcotest.(check (float 1e-9)) "period" 11.0 Lan_rwwc.period;
  Alcotest.(check (float 1e-9)) "round 3 start" 22.0 (Lan_rwwc.round_start 3);
  Alcotest.(check int) "round of decision time" 2
    (Lan_rwwc.round_of_time ((2.0 *. 11.0) -. 0.5))

let test_no_crash_one_period () =
  let res = run_lan ~schedule:Schedule.empty () in
  Alcotest.(check (list int)) "value 1" [ 1 ]
    (Timed_sim.Timed_engine.decided_values res);
  match Timed_sim.Timed_engine.max_decision_time res with
  | Some t ->
    (* decision = computation phase of round 1 = D + delta/2 *)
    Alcotest.(check (float 1e-9)) "one round of wall clock"
      (big_d +. (delta /. 2.0))
      t
  | None -> Alcotest.fail "nobody decided"

let test_silent_killer_wall_clock () =
  for f = 0 to 3 do
    let schedule =
      Adversary.Strategies.coordinator_killer ~n:5 ~f
        ~style:Adversary.Strategies.Silent
    in
    let res = run_lan ~schedule () in
    (match Timed_sim.Timed_engine.max_decision_time res with
    | Some t ->
      let expected =
        (float_of_int f *. Lan_rwwc.period) +. big_d +. (delta /. 2.0)
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "f=%d: (f+1) rounds of D+delta" f)
        expected t
    | None -> Alcotest.fail "nobody decided");
    Alcotest.(check (list int))
      (Printf.sprintf "f=%d decides v_(f+1)" f)
      [ f + 1 ]
      (Timed_sim.Timed_engine.decided_values res)
  done

let scenarios =
  [
    sched [];
    sched [ (1, 1, Crash.Before_send) ];
    sched [ (1, 1, Crash.After_data 0) ];
    sched [ (1, 1, Crash.After_data 1) ];
    sched [ (1, 1, Crash.After_data 4) ];
    sched [ (1, 1, Crash.After_send) ];
    sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 2 ])) ];
    sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 2; 3 ])) ];
    sched [ (1, 1, Crash.Before_send); (2, 2, Crash.After_data 2) ];
    sched [ (1, 1, Crash.After_data 1); (2, 2, Crash.Before_send) ];
    sched [ (2, 1, Crash.Before_send) ];
    sched [ (3, 2, Crash.After_send) ];
  ]

let test_matches_abstract_engine () =
  List.iter
    (fun schedule ->
      let lan = run_lan ~schedule () in
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "decisions match on %s" (Schedule.to_string schedule))
        (abstract_decisions ~n:5 ~schedule)
        (lan_decisions ~res:lan))
    scenarios

let test_zero_fault_plan_is_byte_identical () =
  (* Regression pin: injecting an all-zero fault plan must leave the
     realization byte-identical to the plain reliable-network run — same
     decisions, same decision times, same message and event counts.  The
     plan draws from its own stream, so the engine's rng is untouched. *)
  List.iter
    (fun schedule ->
      let base = run_lan ~schedule () in
      let plan = Net.Fault_plan.create ~seed:99L () in
      let zero = run_lan ~faults:plan ~schedule () in
      let ctx = Schedule.to_string schedule in
      Alcotest.(check bool)
        (Printf.sprintf "identical outcomes (incl. times) on %s" ctx)
        true
        (base.Timed_sim.Timed_engine.outcomes
        = zero.Timed_sim.Timed_engine.outcomes);
      Alcotest.(check int)
        (Printf.sprintf "same msgs_sent on %s" ctx)
        base.Timed_sim.Timed_engine.msgs_sent
        zero.Timed_sim.Timed_engine.msgs_sent;
      Alcotest.(check int)
        (Printf.sprintf "same events_processed on %s" ctx)
        base.Timed_sim.Timed_engine.events_processed
        zero.Timed_sim.Timed_engine.events_processed;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "same end_time on %s" ctx)
        base.Timed_sim.Timed_engine.end_time
        zero.Timed_sim.Timed_engine.end_time;
      Alcotest.(check int)
        (Printf.sprintf "plan injected nothing on %s" ctx)
        0
        (Net.Fault_plan.faults_injected plan))
    scenarios

let test_non_prefix_subset_rejected () =
  (* p1's send order is p2,p3,p4,p5: the subset {p3} skips p2 and cannot
     happen on a serialized wire. *)
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Lan.Realization.translate_rwwc_schedule ~n:5 ~big_d ~delta
            (sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 3 ])) ]));
       false
     with Invalid_argument _ -> true)

let prop_lan_uniform_consensus =
  qtest ~count:150 "lan realization: uniform consensus on prefix schedules"
    QCheck2.Gen.(
      let* n = int_range 3 7 in
      let* f = int_range 0 (n - 2) in
      let* seed = int_range 0 100_000 in
      return (n, f, seed))
    (fun (n, f, seed) ->
      (* Random prefix-expressible schedule: victims p_1..p_f crash in their
         own coordination rounds at a random batch point. *)
      let rng = Prng.Rng.of_int seed in
      let schedule =
        Model.Schedule.of_list
          (List.init f (fun i ->
               let r = i + 1 in
               let point =
                 match Prng.Rng.int rng 4 with
                 | 0 -> Crash.Before_send
                 | 1 ->
                   let keep = Prng.Rng.int rng (n - r + 1) in
                   Crash.During_data
                     (Pid.Set.of_list
                        (List.filteri
                           (fun k _ -> k < keep)
                           (Pid.range ~lo:(r + 1) ~hi:n)))
                 | 2 -> Crash.After_data (Prng.Rng.int rng (n - r))
                 | _ -> Crash.After_send
               in
               (Pid.of_int r, Crash.make ~round:r point)))
      in
      let lan = run_lan ~n ~schedule () in
      let abstract = abstract_decisions ~n ~schedule in
      if lan_decisions ~res:lan = abstract then true
      else
        QCheck2.Test.fail_reportf "divergence on %s"
          (Model.Schedule.to_string schedule))

let () =
  Alcotest.run "lan"
    [
      ( "realization",
        [
          Alcotest.test_case "constants" `Quick test_timing_constants;
          Alcotest.test_case "one-period" `Quick test_no_crash_one_period;
          Alcotest.test_case "wall-clock" `Quick test_silent_killer_wall_clock;
          Alcotest.test_case "abstract-equivalence" `Quick test_matches_abstract_engine;
          Alcotest.test_case "zero-fault-identical" `Quick
            test_zero_fault_plan_is_byte_identical;
          Alcotest.test_case "non-prefix-rejected" `Quick test_non_prefix_subset_rejected;
          prop_lan_uniform_consensus;
        ] );
    ]
