(* The live multi-process runtime: wire codec, crash scripts, the
   deterministic loopback engine, the judge, and a real-socket smoke run
   with a scripted mid-round process kill. *)

open Model

(* --- CRC-32 ---------------------------------------------------------------- *)

let test_crc_vectors () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Live.Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Live.Crc32.string "");
  Alcotest.(check int32) "a" 0xE8B7BE43l (Live.Crc32.string "a")

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let split = 17 in
  let first = Live.Crc32.digest s ~pos:0 ~len:split in
  let rest =
    Live.Crc32.digest ~init:first s ~pos:split ~len:(String.length s - split)
  in
  Alcotest.(check int32) "streaming = one-shot" (Live.Crc32.string s) rest

(* --- Frames ---------------------------------------------------------------- *)

let frames =
  [
    Live.Frame.Hello { node = 3 };
    Live.Frame.Data { instance = 0; round = 2; payload = "\x00\x00\x00\x2a" };
    Live.Frame.Ctl { instance = 0; round = 7 };
    Live.Frame.Data { instance = 12345; round = 1; payload = "" };
    Live.Frame.Ctl { instance = Live.Frame.max_instance; round = 4 };
    Live.Frame.Submit { instance = 9; proposal = 42 };
    Live.Frame.Decide { instance = 130; value = 7; round = 2 };
  ]

let pop_frame d =
  match Live.Frame.pop d with
  | `Frame f -> f
  | `Need_more -> Alcotest.fail "decoder wanted more bytes"
  | `Corrupt why -> Alcotest.fail ("decoder corrupt: " ^ why)

let test_frame_roundtrip () =
  let d = Live.Frame.decoder () in
  List.iter
    (fun f -> Live.Frame.feed_string d (Live.Frame.encode f))
    frames;
  List.iter
    (fun expected ->
      let got = pop_frame d in
      Alcotest.(check bool)
        (Format.asprintf "%a" Live.Frame.pp expected)
        true
        (Live.Frame.equal expected got))
    frames;
  Alcotest.(check int) "drained" 0 (Live.Frame.buffered d)

let test_frame_byte_by_byte () =
  (* Feeding one byte at a time exercises every Need_more path. *)
  let wire = String.concat "" (List.map Live.Frame.encode frames) in
  let d = Live.Frame.decoder () in
  let popped = ref [] in
  String.iter
    (fun c ->
      Live.Frame.feed d (String.make 1 c) ~pos:0 ~len:1;
      let rec drain () =
        match Live.Frame.pop d with
        | `Frame f ->
          popped := f :: !popped;
          drain ()
        | `Need_more -> ()
        | `Corrupt why -> Alcotest.fail ("corrupt: " ^ why)
      in
      drain ())
    wire;
  Alcotest.(check int) "all frames" (List.length frames) (List.length !popped);
  List.iter2
    (fun a b -> Alcotest.(check bool) "frame equal" true (Live.Frame.equal a b))
    frames
    (List.rev !popped)

let test_frame_truncated_tail () =
  (* A killed sender leaves a partial frame in flight: the decoder must
     neither produce a frame nor report corruption — the bytes simply never
     complete. *)
  let wire =
    Live.Frame.encode
      (Live.Frame.Data { instance = 3; round = 1; payload = "abcd" })
  in
  let d = Live.Frame.decoder () in
  Live.Frame.feed d wire ~pos:0 ~len:(String.length wire - 3);
  (match Live.Frame.pop d with
  | `Need_more -> ()
  | `Frame _ -> Alcotest.fail "truncated frame decoded"
  | `Corrupt _ -> Alcotest.fail "truncated frame misread as corruption")

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_frame_corruption () =
  let wire =
    Bytes.of_string
      (Live.Frame.encode (Live.Frame.Ctl { instance = 1; round = 3 }))
  in
  (* Flip one body byte: the CRC must catch it. *)
  Bytes.set wire 6 (Char.chr (Char.code (Bytes.get wire 6) lxor 0x40));
  let d = Live.Frame.decoder () in
  Live.Frame.feed_string d (Bytes.to_string wire);
  (match Live.Frame.pop d with
  | `Corrupt why ->
    Alcotest.(check bool) "mentions CRC" true
      (contains ~affix:"CRC" why || contains ~affix:"kind" why)
  | `Frame _ -> Alcotest.fail "corrupt frame decoded"
  | `Need_more -> Alcotest.fail "corrupt frame ignored");
  (* Corruption is sticky. *)
  match Live.Frame.pop d with
  | `Corrupt _ -> ()
  | `Frame _ | `Need_more -> Alcotest.fail "corruption not sticky"

let test_frame_bad_magic () =
  let d = Live.Frame.decoder () in
  Live.Frame.feed_string d "nonsense bytes";
  match Live.Frame.pop d with
  | `Corrupt _ -> ()
  | `Frame _ | `Need_more -> Alcotest.fail "bad magic accepted"

(* The LEB128 boundaries: every value where the varint grows a byte, plus
   the largest id the codec admits. *)
let instance_edges = [ 0; 1; 127; 128; 16383; 16384; 2097151; 2097152 ]

let test_frame_varint_edges () =
  let d = Live.Frame.decoder () in
  List.iter
    (fun instance ->
      List.iter
        (fun f ->
          Live.Frame.feed_string d (Live.Frame.encode f);
          Alcotest.(check bool)
            (Printf.sprintf "instance %d survives" instance)
            true
            (Live.Frame.equal f (pop_frame d)))
        [
          Live.Frame.Data { instance; round = 1; payload = "x" };
          Live.Frame.Ctl { instance; round = 9 };
          Live.Frame.Submit { instance; proposal = 17 };
          Live.Frame.Decide { instance; value = 3; round = 2 };
        ])
    (instance_edges @ [ Live.Frame.max_instance ]);
  (match
     Live.Frame.encode
       (Live.Frame.Ctl { instance = Live.Frame.max_instance + 1; round = 1 })
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encoder accepted an id beyond max_instance")

let instance_gen =
  QCheck2.Gen.(
    oneof
      [ oneofl instance_edges; int_range 0 Live.Frame.max_instance ])

let frame_gen =
  QCheck2.Gen.(
    instance_gen >>= fun instance ->
    int_range 1 1000 >>= fun round ->
    oneof
      [
        map
          (fun payload -> Live.Frame.Data { instance; round; payload })
          (string_size (int_range 0 24));
        return (Live.Frame.Ctl { instance; round });
        map
          (fun proposal -> Live.Frame.Submit { instance; proposal })
          (int_range 0 100_000);
        map
          (fun value -> Live.Frame.Decide { instance; value; round })
          (int_range 0 100_000);
        map
          (fun value -> Live.Frame.Catchup { instance; value; round })
          (int_range 0 100_000);
      ])

let prop_frame_varint_roundtrip =
  Helpers.qtest ~count:1000 "varint instance ids round-trip at any width"
    frame_gen
    (fun f ->
      let d = Live.Frame.decoder () in
      Live.Frame.feed_string d (Live.Frame.encode f);
      match Live.Frame.pop d with
      | `Frame g when Live.Frame.equal f g -> Live.Frame.buffered d = 0
      | `Frame g ->
        QCheck2.Test.fail_reportf "decoded %a from %a" Live.Frame.pp g
          Live.Frame.pp f
      | `Need_more -> QCheck2.Test.fail_reportf "incomplete after full frame"
      | `Corrupt why -> QCheck2.Test.fail_reportf "corrupt: %s" why)

(* Many instances interleaved on one stream, delivered in awkward chunk
   sizes, with the tail truncated as a kill would leave it: the decoder
   yields exactly the complete prefix and never reports corruption. *)
let prop_frame_fuzz_interleaved_truncation =
  Helpers.qtest ~count:400 "interleaved streams survive chunking + truncation"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 12) frame_gen)
        (int_range 1 9) (int_range 0 40))
    (fun (fs, chunk, cut) ->
      let wire = String.concat "" (List.map Live.Frame.encode fs) in
      let keep = max 0 (String.length wire - cut) in
      let d = Live.Frame.decoder () in
      let pos = ref 0 in
      while !pos < keep do
        let len = min chunk (keep - !pos) in
        Live.Frame.feed d wire ~pos:!pos ~len;
        pos := !pos + len
      done;
      let rec drain acc =
        match Live.Frame.pop d with
        | `Frame f -> drain (f :: acc)
        | `Need_more -> List.rev acc
        | `Corrupt why ->
          QCheck2.Test.fail_reportf "clean truncated stream corrupt: %s" why
      in
      let got = drain [] in
      let rec is_prefix got fs =
        match (got, fs) with
        | [], _ -> true
        | g :: gs, f :: rest -> Live.Frame.equal g f && is_prefix gs rest
        | _ :: _, [] -> false
      in
      if not (is_prefix got fs) then
        QCheck2.Test.fail_reportf "decoded frames are not a prefix"
      else if cut = 0 && List.length got <> List.length fs then
        QCheck2.Test.fail_reportf "untruncated stream lost %d frames"
          (List.length fs - List.length got)
      else true)

(* Corruption fuzz: flip one byte anywhere in a multi-instance stream.  The
   decoder may deliver the frames before the damage, must never invent a
   frame that was not sent, never raises, and once corrupt stays corrupt. *)
let prop_frame_fuzz_corruption =
  Helpers.qtest ~count:400 "a flipped byte never crashes or fabricates frames"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 8) frame_gen)
        small_nat (int_range 1 255))
    (fun (fs, at, delta) ->
      let wire = Bytes.of_string (String.concat "" (List.map Live.Frame.encode fs)) in
      let at = at mod Bytes.length wire in
      Bytes.set wire at (Char.chr (Char.code (Bytes.get wire at) lxor delta));
      let d = Live.Frame.decoder () in
      Live.Frame.feed_string d (Bytes.to_string wire);
      let rec drain acc n =
        if n > List.length fs + 1 then
          QCheck2.Test.fail_reportf "decoder produced too many frames"
        else
          match Live.Frame.pop d with
          | `Frame f -> drain (f :: acc) (n + 1)
          | `Need_more -> `Stopped (List.rev acc)
          | `Corrupt _ -> `Corrupt (List.rev acc)
          | exception e ->
            QCheck2.Test.fail_reportf "pop raised %s" (Printexc.to_string e)
      in
      let sent f = List.exists (Live.Frame.equal f) fs in
      match drain [] 0 with
      | `Stopped got | `Corrupt got ->
        if not (List.for_all sent got) then
          QCheck2.Test.fail_reportf "decoder fabricated a frame"
        else (
          (match Live.Frame.pop d with
          | `Corrupt _ | `Need_more -> ()
          | `Frame _ ->
            QCheck2.Test.fail_reportf "decoder resumed after terminal state");
          true))

let test_frame_v1_compat () =
  (* Captures from pre-instance-id builds still parse: v1 bytes decode to
     the same frames with instance 0. *)
  let olds =
    [
      Live.Frame.Hello { node = 2 };
      Live.Frame.Data { instance = 0; round = 3; payload = "\x01\x02" };
      Live.Frame.Ctl { instance = 0; round = 5 };
    ]
  in
  let d = Live.Frame.decoder () in
  List.iter
    (fun f -> Live.Frame.feed_string d (Live.Frame.encode_v1 f))
    olds;
  List.iter
    (fun f ->
      Alcotest.(check bool) "v1 frame decodes unchanged" true
        (Live.Frame.equal f (pop_frame d)))
    olds;
  (* v1 cannot express a nonzero instance or the client-facing kinds. *)
  List.iter
    (fun f ->
      match Live.Frame.encode_v1 f with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "encode_v1 accepted an inexpressible frame")
    [
      Live.Frame.Data { instance = 1; round = 1; payload = "" };
      Live.Frame.Submit { instance = 0; proposal = 1 };
      Live.Frame.Decide { instance = 0; value = 1; round = 1 };
      Live.Frame.Catchup { instance = 0; value = 1; round = 1 };
    ]

let test_frame_v2_compat () =
  (* v2 is v3 minus the Catchup kind: same bodies, older version byte.
     Pin the byte-level relationship and that the v3 decoder still reads
     v2 streams unchanged. *)
  let olds =
    [
      Live.Frame.Hello { node = 3 };
      Live.Frame.Data { instance = 7; round = 2; payload = "\xff\x00" };
      Live.Frame.Ctl { instance = 12; round = 4 };
      Live.Frame.Submit { instance = 9; proposal = 41 };
      Live.Frame.Decide { instance = 9; value = 41; round = 2 };
    ]
  in
  List.iter
    (fun f ->
      let v3 = Live.Frame.encode f and v2 = Live.Frame.encode_v2 f in
      let patched = Bytes.of_string v3 in
      Bytes.set patched 1 v2.[1];
      Alcotest.(check string) "v2 = v3 with the older version byte"
        (Bytes.to_string patched) v2)
    olds;
  let d = Live.Frame.decoder () in
  List.iter
    (fun f -> Live.Frame.feed_string d (Live.Frame.encode_v2 f))
    olds;
  List.iter
    (fun f ->
      Alcotest.(check bool) "v2 frame decodes unchanged" true
        (Live.Frame.equal f (pop_frame d)))
    olds;
  (* Catchup is the one thing v2 cannot say *)
  match Live.Frame.encode_v2 (Live.Frame.Catchup { instance = 1; value = 2; round = 1 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode_v2 accepted a Catchup"

let test_frame_mixed_version_stream () =
  (* One connection replaying captures from three codec generations: the
     decoder switches per frame on the version byte. *)
  let stream =
    [
      Live.Frame.encode_v1 (Live.Frame.Hello { node = 1 });
      Live.Frame.encode_v2 (Live.Frame.Data { instance = 3; round = 1; payload = "x" });
      Live.Frame.encode (Live.Frame.Catchup { instance = 3; value = 8; round = 2 });
      Live.Frame.encode_v1 (Live.Frame.Ctl { instance = 0; round = 2 });
      Live.Frame.encode (Live.Frame.Decide { instance = 3; value = 8; round = 2 });
    ]
  in
  let expect =
    [
      Live.Frame.Hello { node = 1 };
      Live.Frame.Data { instance = 3; round = 1; payload = "x" };
      Live.Frame.Catchup { instance = 3; value = 8; round = 2 };
      Live.Frame.Ctl { instance = 0; round = 2 };
      Live.Frame.Decide { instance = 3; value = 8; round = 2 };
    ]
  in
  let d = Live.Frame.decoder () in
  Live.Frame.feed_string d (String.concat "" stream);
  List.iter
    (fun f ->
      Alcotest.(check bool) "mixed-version frame" true
        (Live.Frame.equal f (pop_frame d)))
    expect;
  Alcotest.(check int) "stream fully consumed" 0 (Live.Frame.buffered d)

let test_retry_wait_jitter_envelope () =
  (* Without a jitter stream the wait is the backoff level itself. *)
  Alcotest.(check (float 1e-9)) "no jitter = identity" 0.08
    (Live.Sockets.retry_wait 0.08);
  (* With one, every draw lands in [0.5b, 1.5b), the stream is
     deterministic in its seed, and it actually spreads — the envelope a
     mass respawn relies on to avoid thundering-herd. *)
  let draws seed =
    let rng = Prng.Rng.of_int seed in
    List.init 200 (fun _ -> Live.Sockets.retry_wait ~jitter:rng 0.08)
  in
  let a = draws 0x5eed in
  List.iter
    (fun w ->
      if w < 0.04 || w >= 0.12 then
        Alcotest.fail (Printf.sprintf "wait %.5f outside [0.04, 0.12)" w))
    a;
  Alcotest.(check bool) "deterministic per seed" true (a = draws 0x5eed);
  Alcotest.(check bool) "spread across the envelope" true
    (List.length (List.sort_uniq compare a) > 100)

let prop_frame_view_equivalence =
  Helpers.qtest ~count:500 "pop_view sees exactly what pop sees"
    QCheck2.Gen.(list_size (int_range 1 10) frame_gen)
    (fun fs ->
      let wire = String.concat "" (List.map Live.Frame.encode fs) in
      let d1 = Live.Frame.decoder () and d2 = Live.Frame.decoder () in
      Live.Frame.feed_string d1 wire;
      Live.Frame.feed_string d2 wire;
      List.iter
        (fun _ ->
          match (Live.Frame.pop d1, Live.Frame.pop_view d2) with
          | `Frame f, `View v ->
            if not (Live.Frame.equal f (Live.Frame.frame_of_view v)) then
              QCheck2.Test.fail_reportf "view disagrees with pop on %a"
                Live.Frame.pp f
          | _ -> QCheck2.Test.fail_reportf "decoders diverged")
        fs;
      Live.Frame.buffered d2 = 0)

(* --- Scripts --------------------------------------------------------------- *)

let kill_eq : Live.Script.kill Alcotest.testable =
  Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (Live.Script.kill_to_string k))
    ( = )

let test_script_parse () =
  List.iter
    (fun (s, expected) ->
      match Live.Script.parse_kill s with
      | Ok k -> Alcotest.check kill_eq s expected k
      | Error why -> Alcotest.fail why)
    [
      ( "p1@r1:data=2",
        { Live.Script.pid = Pid.of_int 1; round = 1; phase = Live.Script.During_data 2 } );
      ( "p2@r2:ctl=1",
        { Live.Script.pid = Pid.of_int 2; round = 2; phase = Live.Script.During_ctl 1 } );
      ( "p3@r1:before",
        { Live.Script.pid = Pid.of_int 3; round = 1; phase = Live.Script.Before_send } );
      ( "p4@r3:after",
        { Live.Script.pid = Pid.of_int 4; round = 3; phase = Live.Script.After_send } );
    ]

let test_script_parse_rejects () =
  List.iter
    (fun s ->
      match Live.Script.parse_kill s with
      | Error _ -> ()
      | Ok k ->
        Alcotest.fail
          (Printf.sprintf "%S parsed as %s" s (Live.Script.kill_to_string k)))
    [ ""; "p1"; "p1@r1"; "p1@r1:later"; "p0@r1:before"; "px@r1:after";
      "p1@r0:before"; "p1@rx:after"; "p1@r1:data=-1"; "p1@r1:data=x" ]

let test_script_roundtrip () =
  List.iter
    (fun k ->
      match Live.Script.parse_kill (Live.Script.kill_to_string k) with
      | Ok k' -> Alcotest.check kill_eq "print/parse" k k'
      | Error why -> Alcotest.fail why)
    (Live.Script.default ~n:5 ~f:3)

let test_script_validate () =
  let k pid round phase = { Live.Script.pid = Pid.of_int pid; round; phase } in
  (match
     Live.Script.validate ~n:4 ~max_kills:2
       [ k 1 1 (Live.Script.During_data 1); k 2 2 (Live.Script.During_ctl 1) ]
   with
  | Ok () -> ()
  | Error why -> Alcotest.fail why);
  (match
     Live.Script.validate ~n:4 ~max_kills:2
       [ k 5 1 Live.Script.Before_send ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "pid out of range accepted");
  (match
     Live.Script.validate ~n:4 ~max_kills:1
       [ k 1 1 Live.Script.Before_send; k 2 1 Live.Script.Before_send ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "too many kills accepted");
  match
    Live.Script.validate ~n:4 ~max_kills:3
      [ k 1 1 Live.Script.Before_send; k 1 2 Live.Script.After_send ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate victim accepted"

let test_writes_completed () =
  Alcotest.(check int) "before" 0
    (Live.Script.writes_completed Live.Script.Before_send ~data:4 ~ctl:4);
  Alcotest.(check int) "data=2" 2
    (Live.Script.writes_completed (Live.Script.During_data 2) ~data:4 ~ctl:4);
  Alcotest.(check int) "data clamp" 4
    (Live.Script.writes_completed (Live.Script.During_data 9) ~data:4 ~ctl:4);
  Alcotest.(check int) "ctl=1" 5
    (Live.Script.writes_completed (Live.Script.During_ctl 1) ~data:4 ~ctl:4);
  Alcotest.(check int) "after" 8
    (Live.Script.writes_completed Live.Script.After_send ~data:4 ~ctl:4)

(* --- Loopback -------------------------------------------------------------- *)

let decisions tr =
  List.map
    (fun (pid, v, r) -> (Pid.to_int pid, v, r))
    (Live.Transcript.decisions tr)

let test_loopback_no_crash () =
  let tr = Live.Loopback.Rwwc.run ~n:5 ~t:3 ~script:[] () in
  Alcotest.(check (list (triple int int int)))
    "everyone decides 1 in round 1"
    [ (1, 1, 1); (2, 1, 1); (3, 1, 1); (4, 1, 1); (5, 1, 1) ]
    (decisions tr);
  let v = Live.Judge.judge ~schedule:Schedule.empty tr in
  Alcotest.(check bool) "judge passes" true v.Live.Judge.ok

(* The acceptance scenario: n = 5, two scripted kills — the round-1
   coordinator dies mid-data-step (2 of 4 data writes), the round-2
   coordinator dies mid-control-step (all data, 1 of 3 commits). *)
let acceptance_script =
  [
    { Live.Script.pid = Pid.of_int 1; round = 1; phase = Live.Script.During_data 2 };
    { Live.Script.pid = Pid.of_int 2; round = 2; phase = Live.Script.During_ctl 1 };
  ]

let test_loopback_acceptance () =
  let tr = Live.Loopback.Rwwc.run ~n:5 ~t:3 ~script:acceptance_script () in
  (* p1's data reaches p2,p3 (prefix 2 of p2..p5): both adopt est 1.  p2
     relays est 1 to everyone, commits only to p5 (prefix 1 of p5,p4,p3):
     p5 decides 1 in round 2.  p3 coordinates round 3 uncrashed: everyone
     left decides 1 in round 3 = f + 1. *)
  Alcotest.(check (list (triple int int int)))
    "survivors decide 1 within f+1 rounds"
    [ (3, 1, 3); (4, 1, 3); (5, 1, 2) ]
    (decisions tr);
  Alcotest.(check int) "f = 2" 2 (Live.Transcript.f_actual tr);
  let schedule =
    Live.Script.to_schedule
      ~send_plan:(Live.Binding.Rwwc.send_plan ~n:5)
      acceptance_script
  in
  let v = Live.Judge.judge ~schedule tr in
  Alcotest.(check bool) "judge passes" true v.Live.Judge.ok;
  match v.Live.Judge.differential with
  | Some (Ok _) -> ()
  | Some (Error why) -> Alcotest.fail why
  | None -> Alcotest.fail "differential skipped on an all-scripted run"

let test_loopback_deterministic () =
  let run () = Live.Loopback.Rwwc.run ~n:5 ~t:3 ~script:acceptance_script () in
  let a = run () and b = run () in
  Alcotest.(check bool) "byte-identical transcripts" true
    (Live.Transcript.equal_observable a b)

let all_single_kills ~n =
  let phases data ctl =
    [ Live.Script.Before_send; Live.Script.After_send ]
    @ List.init (data + 1) (fun k -> Live.Script.During_data k)
    @ List.init (ctl + 1) (fun k -> Live.Script.During_ctl k)
  in
  List.concat_map
    (fun pid ->
      List.concat_map
        (fun round ->
          let data, ctl =
            let d, c = Live.Binding.Rwwc.send_plan ~n ~me:(Pid.of_int pid) ~round in
            (List.length d, List.length c)
          in
          List.map
            (fun phase -> [ { Live.Script.pid = Pid.of_int pid; round; phase } ])
            (phases data ctl))
        (Pid.range ~lo:1 ~hi:(n - 2) |> List.map Pid.to_int))
    (List.map Pid.to_int (Pid.all ~n))

let test_loopback_differential_sweep () =
  (* Every single-kill script at n = 4 and n = 5: the loopback execution
     must decide exactly like the abstract engine on the realized
     schedule, and pass every uniform-consensus check. *)
  List.iter
    (fun n ->
      let checked = ref 0 in
      List.iter
        (fun script ->
          let tr = Live.Loopback.Rwwc.run ~n ~t:(n - 2) ~script () in
          let schedule =
            Live.Script.to_schedule
              ~send_plan:(Live.Binding.Rwwc.send_plan ~n)
              script
          in
          let v = Live.Judge.judge ~schedule tr in
          incr checked;
          if not v.Live.Judge.ok then
            Alcotest.fail
              (Format.asprintf "n=%d %a:@.%a" n Live.Script.pp script
                 Live.Judge.pp v))
        (all_single_kills ~n);
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: swept some scripts" n)
        true (!checked > 20))
    [ 4; 5 ]

let test_loopback_default_scripts () =
  (* The --f presets through every f the resilience allows. *)
  for f = 0 to 3 do
    let script = Live.Script.default ~n:5 ~f in
    let tr = Live.Loopback.Rwwc.run ~n:5 ~t:3 ~script () in
    let schedule =
      Live.Script.to_schedule ~send_plan:(Live.Binding.Rwwc.send_plan ~n:5) script
    in
    let v = Live.Judge.judge ~schedule tr in
    if not v.Live.Judge.ok then
      Alcotest.fail (Format.asprintf "f=%d:@.%a" f Live.Judge.pp v);
    match Sync_sim.Run_result.max_decision_round (Live.Transcript.to_run_result tr) with
    | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "f=%d: decided within f+1" f)
        true (r <= f + 1)
    | None -> Alcotest.fail "nobody decided"
  done

let test_judge_flags_disagreement () =
  (* A fabricated transcript with two different decided values must fail
     the uniform-agreement check — the judge is not a rubber stamp. *)
  let tr = Live.Loopback.Rwwc.run ~n:4 ~t:2 ~script:[] () in
  let statuses = Array.copy tr.Live.Transcript.statuses in
  statuses.(3) <- Live.Transcript.Decided { value = 4; at_round = 1 };
  let forged = { tr with Live.Transcript.statuses = statuses } in
  let v = Live.Judge.judge forged in
  Alcotest.(check bool) "judge fails" false v.Live.Judge.ok

let test_judge_flags_missing_decision () =
  let tr = Live.Loopback.Rwwc.run ~n:4 ~t:2 ~script:[] () in
  let statuses = Array.copy tr.Live.Transcript.statuses in
  statuses.(2) <- Live.Transcript.Undecided;
  let forged = { tr with Live.Transcript.statuses = statuses } in
  let v = Live.Judge.judge forged in
  Alcotest.(check bool) "termination fails" false v.Live.Judge.ok

(* --- Sockets --------------------------------------------------------------- *)

let socket_config ~dir ~n ~script =
  Live.Supervisor.config ~n ~t:(n - 2) ~script
    ~transport:(`Unix dir)
    ~big_d:0.25 ~delta:0.1 ()

let test_socket_smoke () =
  (* One real multi-process run over Unix-domain sockets: n = 4, one
     scripted mid-data-step kill of the round-1 coordinator (the CI smoke
     scenario).  Every survivor must decide and match the abstract
     engine. *)
  let script =
    [ { Live.Script.pid = Pid.of_int 1; round = 1; phase = Live.Script.During_data 1 } ]
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "live-test-%d" (Unix.getpid ())) in
  match Live.Supervisor.run (socket_config ~dir ~n:4 ~script) with
  | Error why -> Alcotest.fail ("supervisor: " ^ why)
  | Ok (tr, v) ->
    Alcotest.(check (list (triple int int int)))
      "survivors decide 1 (p2 relays the adopted estimate)"
      [ (2, 1, 2); (3, 1, 2); (4, 1, 2) ]
      (decisions tr);
    if not v.Live.Judge.ok then
      Alcotest.fail (Format.asprintf "judge:@.%a" Live.Judge.pp v)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_sockets_connect_error () =
  (* Nobody listens here: bounded-backoff retry until the deadline, then a
     structured error naming the operation and carrying the errno. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "live-no-listener-%d.sock" (Unix.getpid ()))
  in
  let t0 = Live.Sockets.now () in
  match
    Live.Sockets.connect_retry ~deadline:(t0 +. 0.3) (Unix.ADDR_UNIX path)
  with
  | Ok _ -> Alcotest.fail "connected to a socket nobody listens on"
  | Error e ->
    Alcotest.(check bool) "honored the deadline" true
      (Live.Sockets.now () -. t0 >= 0.25);
    Alcotest.(check string) "op" "connect" e.Live.Sockets.op;
    Alcotest.(check bool) "carries an errno" true (e.Live.Sockets.errno <> None);
    Alcotest.(check bool) "mentions the deadline" true
      (contains ~sub:"deadline" (Live.Sockets.error_to_string e))

let test_sockets_listen_error () =
  match
    Live.Sockets.listen
      (Unix.ADDR_UNIX "/no-such-directory-anywhere/live-test.sock")
  with
  | Ok _ -> Alcotest.fail "bound into a nonexistent directory"
  | Error e ->
    Alcotest.(check bool) "carries an errno" true (e.Live.Sockets.errno <> None);
    Alcotest.(check bool) "printable" true
      (String.length (Live.Sockets.error_to_string e) > 0)

(* --- Supervisor self-healing events ---------------------------------------- *)

let counting_instrument () =
  let respawns = ref 0 and absorbed = ref 0 in
  let instrument =
    Obs.Instrument.of_fn (function
      | Live.Supervisor.Respawned _ -> incr respawns
      | Live.Supervisor.Absorbed _ -> incr absorbed)
  in
  (instrument, respawns, absorbed)

let chaos_workspace stem =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "live-%s-%d" stem (Unix.getpid ()))

let test_supervisor_respawn_event () =
  (* Node 2 is SIGKILLed right after its first spawn, before readiness: the
     self-healing window must replace it (one Respawned event) and the run
     must still pass the judge. *)
  let instrument, respawns, absorbed = counting_instrument () in
  let cfg =
    Live.Supervisor.config ~n:4 ~t:2 ~script:[]
      ~transport:(`Unix (chaos_workspace "respawn"))
      ~big_d:0.25 ~delta:0.1 ~respawn_budget:2 ~instrument
      ~chaos_startup_kills:[ 2 ] ()
  in
  match Live.Supervisor.run cfg with
  | Error why -> Alcotest.fail ("supervisor: " ^ why)
  | Ok (_, v) ->
    Alcotest.(check int) "one respawn event" 1 !respawns;
    Alcotest.(check int) "no absorption" 0 !absorbed;
    if not v.Live.Judge.ok then
      Alcotest.fail (Format.asprintf "judge:@.%a" Live.Judge.pp v)

let test_supervisor_respawn_budget_exhausted () =
  (* The same node killed twice against a budget of 1: startup must abort
     with a budget error after exactly one respawn attempt. *)
  let instrument, respawns, _ = counting_instrument () in
  let cfg =
    Live.Supervisor.config ~n:4 ~t:2 ~script:[]
      ~transport:(`Unix (chaos_workspace "budget"))
      ~big_d:0.25 ~delta:0.1 ~respawn_budget:1 ~instrument
      ~chaos_startup_kills:[ 2; 2 ] ()
  in
  match Live.Supervisor.run cfg with
  | Ok _ -> Alcotest.fail "run survived an exhausted respawn budget"
  | Error why ->
    Alcotest.(check bool) "names the budget" true
      (contains ~sub:"respawn budget" why);
    Alcotest.(check int) "spent the whole budget" 1 !respawns

let test_supervisor_absorbs_run_kill () =
  (* An unscripted SIGKILL after the mesh is up: the run continues, and the
     death is emitted as an Absorbed event.  The judge may or may not pass
     (the differential schedule doesn't know about the unscripted crash);
     the event accounting is the contract under test. *)
  let instrument, respawns, absorbed = counting_instrument () in
  let cfg =
    Live.Supervisor.config ~n:4 ~t:2 ~script:[]
      ~transport:(`Unix (chaos_workspace "absorb"))
      ~big_d:0.25 ~delta:0.1 ~instrument
      ~chaos_run_kills:[ (4, 0.05) ] ()
  in
  match Live.Supervisor.run cfg with
  | Error why -> Alcotest.fail ("supervisor: " ^ why)
  | Ok (tr, _) ->
    Alcotest.(check int) "no respawn" 0 !respawns;
    Alcotest.(check int) "one absorbed death" 1 !absorbed;
    Alcotest.(check bool) "the dead node shows as crashed" true
      (Live.Transcript.f_actual tr >= 1)

let () =
  Alcotest.run "live"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_vectors;
          Alcotest.test_case "incremental" `Quick test_crc_incremental;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "byte-by-byte" `Quick test_frame_byte_by_byte;
          Alcotest.test_case "truncated tail" `Quick test_frame_truncated_tail;
          Alcotest.test_case "corruption" `Quick test_frame_corruption;
          Alcotest.test_case "bad magic" `Quick test_frame_bad_magic;
          Alcotest.test_case "varint edges" `Quick test_frame_varint_edges;
          Alcotest.test_case "v1 compat" `Quick test_frame_v1_compat;
          Alcotest.test_case "v2 compat" `Quick test_frame_v2_compat;
          Alcotest.test_case "mixed-version stream" `Quick
            test_frame_mixed_version_stream;
          prop_frame_varint_roundtrip;
          prop_frame_fuzz_interleaved_truncation;
          prop_frame_fuzz_corruption;
          prop_frame_view_equivalence;
        ] );
      ( "script",
        [
          Alcotest.test_case "parse" `Quick test_script_parse;
          Alcotest.test_case "parse rejects" `Quick test_script_parse_rejects;
          Alcotest.test_case "print/parse roundtrip" `Quick test_script_roundtrip;
          Alcotest.test_case "validate" `Quick test_script_validate;
          Alcotest.test_case "writes completed" `Quick test_writes_completed;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "no crash" `Quick test_loopback_no_crash;
          Alcotest.test_case "acceptance n=5 f=2" `Quick test_loopback_acceptance;
          Alcotest.test_case "deterministic" `Quick test_loopback_deterministic;
          Alcotest.test_case "differential sweep" `Quick test_loopback_differential_sweep;
          Alcotest.test_case "default --f scripts" `Quick test_loopback_default_scripts;
          Alcotest.test_case "judge flags disagreement" `Quick test_judge_flags_disagreement;
          Alcotest.test_case "judge flags missing decision" `Quick
            test_judge_flags_missing_decision;
        ] );
      ( "socket",
        [
          Alcotest.test_case "smoke n=4 mid-data kill" `Quick test_socket_smoke;
          Alcotest.test_case "structured connect error" `Quick
            test_sockets_connect_error;
          Alcotest.test_case "structured listen error" `Quick
            test_sockets_listen_error;
          Alcotest.test_case "retry-wait jitter envelope" `Quick
            test_retry_wait_jitter_envelope;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "respawn emits an event" `Quick
            test_supervisor_respawn_event;
          Alcotest.test_case "respawn budget exhausted" `Quick
            test_supervisor_respawn_budget_exhausted;
          Alcotest.test_case "absorbs an unscripted run kill" `Quick
            test_supervisor_absorbs_run_kill;
        ] );
    ]
